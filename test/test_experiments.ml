(* End-to-end checks that every regenerated table and figure lands on the
   paper's numbers (exactly where the simulation is deterministic, within
   stated tolerance where a workload is sampled). These are the repo's
   reproduction contract. *)

module E = Lrpc_experiments
module Time = Lrpc_sim.Time

let near name target tolerance value =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f within %.2f of %.2f" name value tolerance target)
    true
    (Float.abs (value -. target) <= tolerance)

(* --- Table 1 ---------------------------------------------------------------- *)

let test_table1 () =
  let r = E.Table1.run ~operations:300_000 () in
  List.iter
    (fun row ->
      near row.E.Table1.os row.E.Table1.paper_percent 0.4
        row.E.Table1.measured_percent)
    r.E.Table1.rows;
  Alcotest.(check int) "three systems" 3 (List.length r.E.Table1.rows)

(* --- Figure 1 ---------------------------------------------------------------- *)

let test_fig1 () =
  let r = E.Fig1.run ~calls:200_000 () in
  let s = r.E.Fig1.stats in
  near "top3" 0.75 0.02 s.Lrpc_workload.Sizes.top3_share;
  near "top10" 0.95 0.02 s.Lrpc_workload.Sizes.top10_share;
  Alcotest.(check int) "distinct" 112 s.Lrpc_workload.Sizes.distinct_procs;
  Alcotest.(check int) "mode <50B" 0
    (Lrpc_util.Histogram.mode_bin s.Lrpc_workload.Sizes.histogram);
  Alcotest.(check bool) "render mentions landmarks" true
    (String.length (E.Fig1.render r) > 500)

(* --- Table 2 ---------------------------------------------------------------- *)

let test_table2 () =
  let r = E.Table2.run ~calls:50 () in
  List.iter
    (fun row ->
      near (row.E.Table2.system ^ " minimum") row.E.Table2.paper_minimum 0.5
        row.E.Table2.minimum_us;
      near (row.E.Table2.system ^ " actual") row.E.Table2.paper_actual 1.0
        row.E.Table2.actual_us;
      Alcotest.(check bool)
        (row.E.Table2.system ^ " overhead consistent")
        true
        (Float.abs
           (row.E.Table2.overhead_us
           -. (row.E.Table2.actual_us -. row.E.Table2.minimum_us))
        < 1e-6))
    r.E.Table2.rows;
  Alcotest.(check int) "six systems" 6 (List.length r.E.Table2.rows)

(* --- Table 3 ---------------------------------------------------------------- *)

let test_table3 () =
  let r = E.Table3.run () in
  Alcotest.(check (list string)) "LRPC call" [ "A" ]
    r.E.Table3.lrpc_mutable.E.Table3.call_copies;
  Alcotest.(check (list string)) "LRPC return" [ "F" ]
    r.E.Table3.lrpc_mutable.E.Table3.return_copies;
  Alcotest.(check (list string)) "LRPC immutable call" [ "A"; "E" ]
    r.E.Table3.lrpc_immutable.E.Table3.call_copies;
  Alcotest.(check (list string)) "MP call" [ "A"; "B"; "C"; "E" ]
    r.E.Table3.message_passing.E.Table3.call_copies;
  Alcotest.(check (list string)) "MP return" [ "B"; "C"; "F" ]
    r.E.Table3.message_passing.E.Table3.return_copies;
  Alcotest.(check (list string)) "RMP call" [ "A"; "D"; "E" ]
    r.E.Table3.restricted.E.Table3.call_copies;
  Alcotest.(check (list string)) "RMP return" [ "D"; "F" ]
    r.E.Table3.restricted.E.Table3.return_copies;
  (* the paper's headline counts: 3 vs 7 vs 5 *)
  Alcotest.(check int) "LRPC 3" 3
    (E.Table3.total_when_immutable r.E.Table3.lrpc_immutable);
  Alcotest.(check int) "MP 7" 7
    (E.Table3.total_when_immutable r.E.Table3.message_passing);
  Alcotest.(check int) "RMP 5" 5
    (E.Table3.total_when_immutable r.E.Table3.restricted)

(* --- Table 4 ---------------------------------------------------------------- *)

let test_table4 () =
  let r = E.Table4.run ~calls:100 () in
  List.iter
    (fun row ->
      let pm, pl, pt = row.E.Table4.paper in
      near (row.E.Table4.test ^ " LRPC/MP") pm 3.0 row.E.Table4.lrpc_mp_us;
      near (row.E.Table4.test ^ " LRPC") pl 0.2 row.E.Table4.lrpc_us;
      near (row.E.Table4.test ^ " Taos") pt 0.5 row.E.Table4.taos_us;
      (* the paper's headline: LRPC is a factor of three faster than SRC *)
      Alcotest.(check bool)
        (row.E.Table4.test ^ " factor ~3")
        true
        (row.E.Table4.taos_us /. row.E.Table4.lrpc_us > 2.5))
    r.E.Table4.rows

(* --- Table 5 ---------------------------------------------------------------- *)

let test_table5 () =
  let r = E.Table5.run ~calls:200 () in
  near "total" 157.0 0.01 r.E.Table5.total_us;
  near "tlb misses" 43.0 0.01 r.E.Table5.tlb_misses_per_call;
  near "tlb fraction ~25%" 0.246 0.01 r.E.Table5.tlb_fraction;
  List.iter
    (fun row ->
      (match row.E.Table5.paper_minimum with
      | Some p -> near row.E.Table5.operation p 0.01 row.E.Table5.minimum_us
      | None -> ());
      match row.E.Table5.paper_overhead with
      | Some p -> near row.E.Table5.operation p 0.01 row.E.Table5.overhead_us
      | None -> ())
    r.E.Table5.rows

(* --- Figure 2 ---------------------------------------------------------------- *)

let test_fig2 () =
  let r = E.Fig2.run ~horizon:(Time.ms 200) () in
  near "speedup at 4" 3.7 0.1 r.E.Fig2.lrpc_speedup_at_4;
  near "microvax speedup at 5" 4.3 0.2 r.E.Fig2.microvax_speedup_at_5;
  let p4 = List.nth r.E.Fig2.points 3 in
  Alcotest.(check bool) "lrpc over 23000" true (p4.E.Fig2.lrpc > 22_000.);
  Alcotest.(check bool) "src capped near 4000" true
    (p4.E.Fig2.src > 3_000. && p4.E.Fig2.src < 4_600.);
  let p2 = List.nth r.E.Fig2.points 1 in
  Alcotest.(check bool) "src flat after 2 cpus" true
    (p4.E.Fig2.src < p2.E.Fig2.src *. 1.15)

(* --- Ablations ---------------------------------------------------------------- *)

let test_a1 () =
  let a = E.Ablations.run_a1 () in
  near "untagged" 157.0 0.01 a.E.Ablations.untagged_null_us;
  near "tagged" 118.3 0.01 a.E.Ablations.tagged_null_us;
  near "cached" 125.0 0.01 a.E.Ablations.domain_cached_null_us

let test_a2 () =
  let a = E.Ablations.run_a2 () in
  List.iter
    (fun (n, trusting, defensive) ->
      Alcotest.(check bool)
        (Printf.sprintf "defensive slower at %d bytes" n)
        true (defensive > trusting))
    a.E.Ablations.sizes;
  (* penalty grows with size *)
  let penalties = List.map (fun (_, t, d) -> d -. t) a.E.Ablations.sizes in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "penalty grows" true (increasing penalties)

let test_a3 () =
  let a = E.Ablations.run_a3 () in
  near "handoff is the 464 path" 464.0 0.01 a.E.Ablations.handoff_null_us;
  Alcotest.(check bool) "general path slower" true
    (a.E.Ablations.general_null_us > a.E.Ablations.handoff_null_us +. 50.0)

let test_a4 () =
  let a = E.Ablations.run_a4 ~horizon:(Time.ms 150) () in
  let last l = List.nth l (List.length l - 1) in
  let per4 = last a.E.Ablations.per_astack in
  let glob4 = last a.E.Ablations.global_lock in
  Alcotest.(check bool) "per-astack scales" true (per4 > 22_000.);
  Alcotest.(check bool) "global lock caps" true (glob4 < 12_000.);
  (* and the global-lock curve is flat from 2 CPUs on *)
  let glob2 = List.nth a.E.Ablations.global_lock 1 in
  Alcotest.(check bool) "flat" true (glob4 < glob2 *. 1.15)

let test_a5 () =
  let a = E.Ablations.run_a5 () in
  Alcotest.(check bool) "lazy saves address space" true
    (a.E.Ablations.static_pages_after_bind
    > 50 * a.E.Ablations.lazy_pages_after_bind);
  Alcotest.(check bool) "lazy defers the cost to first call" true
    (a.E.Ablations.lazy_first_call_us > a.E.Ablations.static_first_call_us);
  Alcotest.(check bool) "steady state equal" true a.E.Ablations.steady_state_equal

let test_a6 () =
  let a = E.Ablations.run_a6 () in
  Alcotest.(check int) "32-byte budget" 32 a.E.Ablations.register_budget_bytes;
  let find n =
    let _, regs, plain, lrpc =
      List.find (fun (m, _, _, _) -> m = n) a.E.Ablations.points
    in
    (regs, plain, lrpc)
  in
  let r32, p32, _ = find 32 in
  let r36, _, _ = find 36 in
  (* registers help while they fit... *)
  Alcotest.(check bool) "faster in budget" true (r32 < p32 -. 50.0);
  (* ...then the cliff: one 4-byte overflow loses the whole benefit *)
  Alcotest.(check bool) "discontinuity" true (r36 > r32 +. 50.0);
  (* LRPC degrades smoothly across the same boundary *)
  let _, _, l32 = find 32 in
  let _, _, l36 = find 36 in
  Alcotest.(check bool) "lrpc smooth" true (Float.abs (l36 -. l32) < 2.0);
  (* and LRPC still beats even the register fast path *)
  List.iter
    (fun (_, regs, _, lrpc) ->
      Alcotest.(check bool) "lrpc fastest" true (lrpc < regs))
    a.E.Ablations.points

let test_latency_distribution () =
  let r = E.Latency.run ~horizon:(Time.ms 100) () in
  Alcotest.(check int) "six rows" 6 (List.length r.E.Latency.rows);
  let find system clients =
    List.find
      (fun row -> row.E.Latency.system = system && row.E.Latency.clients = clients)
      r.E.Latency.rows
  in
  let lrpc1 = find "LRPC" 1 and lrpc4 = find "LRPC" 4 in
  let src1 = find "SRC RPC" 1 and src4 = find "SRC RPC" 4 in
  near "lrpc single mean" 157.0 1.0 lrpc1.E.Latency.mean_us;
  near "src single mean" 464.0 1.0 src1.E.Latency.mean_us;
  (* contention shifts SRC wholesale; LRPC only by the bus factor *)
  Alcotest.(check bool) "src degrades >1.8x" true
    (src4.E.Latency.mean_us > 1.8 *. src1.E.Latency.mean_us);
  Alcotest.(check bool) "lrpc degrades <15%" true
    (lrpc4.E.Latency.mean_us < 1.15 *. lrpc1.E.Latency.mean_us);
  List.iter
    (fun row ->
      Alcotest.(check bool) "percentiles ordered" true
        (row.E.Latency.p50_us <= row.E.Latency.p90_us
        && row.E.Latency.p90_us <= row.E.Latency.p99_us))
    r.E.Latency.rows

(* --- open-loop load study -------------------------------------------------- *)

let openloop_quick = lazy (E.Openloop.run ~quick:true ())

let test_openloop_shape () =
  let r = Lazy.force openloop_quick in
  let systems = List.map (fun c -> c.E.Openloop.oc_system) r.E.Openloop.or_curves in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " curve present") true
        (List.mem required systems))
    [ "lrpc"; "src_rpc"; "netrpc" ];
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.E.Openloop.oc_system ^ " capacity positive")
        true
        (c.E.Openloop.oc_capacity_cps > 0.0);
      let offered =
        List.map (fun p -> p.E.Openloop.op_offered_cps) c.E.Openloop.oc_points
      in
      Alcotest.(check bool)
        (c.E.Openloop.oc_system ^ " offered load strictly increasing")
        true
        (List.for_all2 (fun a b -> a < b)
           (List.filteri (fun i _ -> i < List.length offered - 1) offered)
           (List.tl offered));
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "%s@%.0f quantiles ordered" c.E.Openloop.oc_system
               p.E.Openloop.op_offered_cps)
            true
            (p.E.Openloop.op_p50_us <= p.E.Openloop.op_p99_us
            && p.E.Openloop.op_p99_us <= p.E.Openloop.op_p999_us);
          Alcotest.(check bool) "measured <= completed <= issued" true
            (p.E.Openloop.op_measured <= p.E.Openloop.op_completed
            && p.E.Openloop.op_completed <= p.E.Openloop.op_issued))
        c.E.Openloop.oc_points)
    r.E.Openloop.or_curves

let test_openloop_knee_detected () =
  (* The sweep deliberately runs past capacity, so every system must
     saturate — the study's whole point. *)
  let r = Lazy.force openloop_quick in
  List.iter
    (fun c ->
      match c.E.Openloop.oc_knee_cps with
      | Some k ->
          Alcotest.(check bool)
            (Printf.sprintf "%s knee %.0f within sweep" c.E.Openloop.oc_system k)
            true
            (k > 0.0 && k <= 1.35 *. c.E.Openloop.oc_capacity_cps +. 1.0)
      | None ->
          Alcotest.fail (c.E.Openloop.oc_system ^ ": no saturation knee found"))
    r.E.Openloop.or_curves

let test_openloop_engine_domains_invariant () =
  (* The acceptance bar for the partitioned engine: the whole study —
     capacity anchors, arrival streams, quantile sketches — is
     bit-identical however the simulated processors shard across host
     domains. *)
  let json d =
    E.Openloop.to_json (E.Openloop.run ~quick:true ~engine_domains:d ())
  in
  let d1 = json 1 in
  Alcotest.(check string) "1 = 2 engine domains" d1 (json 2);
  Alcotest.(check string) "1 = 4 engine domains" d1 (json 4)

let test_openloop_json_render () =
  let r = Lazy.force openloop_quick in
  let json = E.Openloop.to_json r in
  Alcotest.(check bool) "json mentions experiment" true
    (String.length json > 200
    && String.sub json 0 25 = "{\"experiment\": \"openloop\"");
  Alcotest.(check bool) "text render substantial" true
    (String.length (E.Openloop.render r) > 200)

(* renders should never raise and always mention the paper *)
let test_renders () =
  let nonempty name s =
    Alcotest.(check bool) (name ^ " render") true (String.length s > 100)
  in
  nonempty "t1" (E.Table1.render (E.Table1.run ~operations:10_000 ()));
  nonempty "t3" (E.Table3.render (E.Table3.run ()));
  nonempty "t5" (E.Table5.render (E.Table5.run ~calls:10 ()))

let () =
  Alcotest.run "lrpc_experiments"
    [
      ( "paper artifacts",
        [
          Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "figure 1" `Quick test_fig1;
          Alcotest.test_case "table 2" `Quick test_table2;
          Alcotest.test_case "table 3" `Quick test_table3;
          Alcotest.test_case "table 4" `Quick test_table4;
          Alcotest.test_case "table 5" `Quick test_table5;
          Alcotest.test_case "figure 2" `Slow test_fig2;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "a1 tlb" `Quick test_a1;
          Alcotest.test_case "a2 copies" `Quick test_a2;
          Alcotest.test_case "a3 handoff" `Quick test_a3;
          Alcotest.test_case "a4 locks" `Slow test_a4;
          Alcotest.test_case "a5 estacks" `Quick test_a5;
          Alcotest.test_case "a6 registers" `Quick test_a6;
        ] );
      ( "supplementary",
        [ Alcotest.test_case "latency distribution" `Slow test_latency_distribution ] );
      ( "openloop",
        [
          Alcotest.test_case "curve shape" `Slow test_openloop_shape;
          Alcotest.test_case "knee detected" `Slow test_openloop_knee_detected;
          Alcotest.test_case "engine-domains invariant" `Slow
            test_openloop_engine_domains_invariant;
          Alcotest.test_case "renders" `Slow test_openloop_json_render;
        ] );
      ("rendering", [ Alcotest.test_case "renders" `Quick test_renders ]);
    ]
