(* Deterministic fault injection and the hardened call path.

   Covers the chaos soak (thousands of mixed calls under a seeded
   plan, all global invariants, bit-identical same-seed replay),
   deadlines and ?timeout through the §5.3 abort path, lossy-wire
   retry with at-most-once dedup, retry exhaustion, crash-safe
   A-stack recovery (mid-call crashes, FIFO waiters of a revoked
   binding, release_captured after a timeout abort), injected
   starvation and server exceptions, kernel hook handles, and the
   failure observability surface (Call_failed trace event, counters,
   Chrome export). Built against the Lrpc umbrella. *)

open Lrpc
module V = Value
module I = Types

let cm = Cost_model.cvax_firefly

(* --- scaffolding --------------------------------------------------------- *)

type world = {
  engine : Engine.t;
  kernel : Kernel.t;
  rt : Api.t;
  server : Pdomain.t;
  client : Pdomain.t;
}

let iface =
  I.interface "Fault"
    [
      I.proc "null" [];
      I.proc ~result:I.Int32 "add" [ I.param "a" I.Int32; I.param "b" I.Int32 ];
      I.proc ~result:I.Int32 ~astacks:1 "slow_one" [ I.param "v" I.Int32 ];
      I.proc ~result:I.Int32 "slow" [ I.param "v" I.Int32 ];
      I.proc ~result:I.Int32 "hang" [ I.param "v" I.Int32 ];
    ]

let make_world ?config ?(processors = 1) () =
  let engine = Engine.create ~processors cm in
  let kernel = Kernel.boot engine in
  let rt = Api.init ?config kernel in
  let server = Kernel.create_domain kernel ~name:"srv" in
  let client = Kernel.create_domain kernel ~name:"app" in
  let echo ctx =
    match Server_ctx.arg ctx 0 with
    | V.Int v -> [ V.int v ]
    | _ -> Alcotest.fail "bad arg"
  in
  let delayed d ctx =
    Engine.delay engine d;
    echo ctx
  in
  let add ctx =
    match Server_ctx.args ctx with
    | [ V.Int a; V.Int b ] -> [ V.int (a + b) ]
    | _ -> Alcotest.fail "add: bad args"
  in
  ignore
    (Api.export rt ~domain:server iface
       ~impls:
         [
           ("null", fun _ -> []);
           ("add", add);
           ("slow_one", delayed (Time.us 100));
           ("slow", delayed (Time.us 100));
           ("hang", delayed (Time.us 50_000));
         ]);
  { engine; kernel; rt; server; client }

let run_world w =
  Engine.run w.engine;
  match Engine.failures w.engine with
  | [] -> ()
  | (th, exn) :: _ ->
      Alcotest.failf "thread %s died: %s" (Engine.thread_name th)
        (Printexc.to_string exn)

let in_client w body =
  ignore (Kernel.spawn w.kernel w.client ~name:"test-client" body);
  run_world w

let import w = Api.import w.rt ~domain:w.client ~interface:"Fault"

let ctr w name =
  Lrpc_obs.Metrics.Counter.value
    (Lrpc_obs.Metrics.counter (Engine.metrics w.engine) name)

(* Every A-stack home and nobody left queued: the resource invariant
   all the recovery paths must restore. *)
let pool_balanced b proc =
  let pb = List.assoc proc b.Rt.b_procs in
  let pool = pb.Rt.pb_pool in
  Astack.free_count pool = List.length pool.Rt.ap_all
  && Astack.waiting pool = 0

let check_quiescent w =
  Alcotest.(check int) "no calls in flight" 0 (Api.calls_in_flight w.rt);
  Alcotest.(check int) "no linkages in use" 0 (Kernel.total_linkages w.kernel)

(* A far domain behind the Netrpc wire, counting server executions. *)
let add_remote ?rto ?max_attempts ?retry_budget ?dedup_capacity w =
  let far = Kernel.create_domain w.kernel ~machine:1 ~name:"far" in
  let executed = ref 0 in
  let riface =
    I.interface "RFault"
      [ I.proc ~result:I.Int32 "recho" [ I.param "v" I.Int32 ] ]
  in
  let rb =
    Netrpc.import_remote ?rto ?max_attempts ?retry_budget ?dedup_capacity
      ~window:4 w.rt ~client:w.client ~server:far riface
      ~impls:
        [
          ( "recho",
            function
            | [ V.Int v ] ->
                incr executed;
                [ V.int v ]
            | _ -> Alcotest.fail "recho: bad args" );
        ]
  in
  (rb, executed)

(* --- the chaos soak ------------------------------------------------------- *)

let test_soak_invariants () =
  let r = Fault_soak.run Fault_soak.default in
  Alcotest.(check bool) "all invariants hold" true (Fault_soak.ok r);
  Alcotest.(check int) "all calls issued" Fault_soak.default.Fault_soak.calls
    r.Fault_soak.r_calls;
  Alcotest.(check bool) "soak is big enough" true (r.Fault_soak.r_calls >= 5000);
  (* The plan must actually have bitten, or the soak proves nothing. *)
  Alcotest.(check bool) "wire retries happened" true (r.Fault_soak.r_retries > 0);
  Alcotest.(check bool) "a domain crashed" true (r.Fault_soak.r_crashes >= 1);
  Alcotest.(check bool) "starvation happened" true
    (r.Fault_soak.r_starvations > 0);
  Alcotest.(check bool) "stubs raised" true (r.Fault_soak.r_stub > 0);
  Alcotest.(check bool) "deadlines fired" true (r.Fault_soak.r_deadline > 0);
  (* JSON report shape, as consumed by `make fault-smoke`. *)
  let json = Fault_soak.report_to_json r in
  List.iter
    (fun key ->
      let sub = Printf.sprintf "\"%s\"" key in
      let found =
        let n = String.length json and m = String.length sub in
        let rec scan i = i + m <= n && (String.sub json i m = sub || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (key ^ " in JSON") true found)
    [
      "seed"; "outcomes"; "faults"; "invariants"; "net_retries";
      "pool_balanced"; "no_stuck_threads"; "digest";
    ]

let test_soak_replay_identical () =
  let r1 = Fault_soak.run Fault_soak.default in
  let r2 = Fault_soak.run Fault_soak.default in
  Alcotest.(check string) "same seed, same trace digest"
    r1.Fault_soak.r_digest r2.Fault_soak.r_digest;
  let r3 = Fault_soak.run { Fault_soak.default with Fault_soak.seed = 7L } in
  Alcotest.(check bool) "different seed diverges" true
    (Fault_soak.ok r3 && r3.Fault_soak.r_digest <> r1.Fault_soak.r_digest)

(* Same seed, same report — digest included — no matter how many host
   domains the engine shards over, with the locality topology (rings,
   distance premiums, near/far counters) live. *)
let test_soak_clustered_domains_identical () =
  let clu = Cost_model.clustered ~cluster_size:2 ~name:"clu2" cm in
  let cfg d =
    {
      Fault_soak.default with
      Fault_soak.calls = 1500;
      cost_model = Some clu;
      engine_domains = d;
    }
  in
  let r1 = Fault_soak.run (cfg 1) in
  let r2 = Fault_soak.run (cfg 2) in
  let r4 = Fault_soak.run (cfg 4) in
  Alcotest.(check bool) "invariants hold" true (Fault_soak.ok r1);
  Alcotest.(check bool) "topology steals happened" true
    (r1.Fault_soak.r_steals_near + r1.Fault_soak.r_steals_far > 0);
  Alcotest.(check string) "domains 2 digest"
    r1.Fault_soak.r_digest r2.Fault_soak.r_digest;
  Alcotest.(check string) "domains 4 digest"
    r1.Fault_soak.r_digest r4.Fault_soak.r_digest

(* The tuning loop: under a re-shard policy pools start single-sharded.
   A contended soak — every client hammering one procedure's pool from
   its own processor — keeps colliding on that one shard lock. The
   inert controller (a threshold no contention ratio can reach) stays
   single-sharded; the live one grows the hot pool and the contention
   counter collapses, with the simulated call results pinned identical
   (fault-free world, every call completes in both arms). *)
let reshard_soak policy =
  let engine = Engine.create ~processors:8 cm in
  let kernel = Kernel.boot engine in
  let rt = Api.init kernel in
  (* Installed before the bind so the pool is born single-sharded. *)
  Api.set_reshard rt policy;
  let server = Kernel.create_domain kernel ~name:"srv" in
  let client = Kernel.create_domain kernel ~name:"app" in
  let hot = I.interface "Hot" [ I.proc ~astacks:16 "null" [] ] in
  (* Deterministically varying service time: identical-length calls
     phase-separate after their first collision and never collide
     again, which would starve the soak of the very contention it is
     probing; the drift keeps the eight clients re-colliding. *)
  let tick = ref 0 in
  let jitter _ =
    incr tick;
    Engine.delay engine (Time.us (!tick mod 5));
    []
  in
  ignore (Api.export rt ~domain:server hot ~impls:[ ("null", jitter) ]);
  (* One shared binding: A-stacks are allocated per binding (§3.1), so
     per-client imports would give each client a private pool and no
     contention at all. *)
  ignore
    (Kernel.spawn kernel client ~name:"setup" (fun () ->
         let b = Api.import rt ~domain:client ~interface:"Hot" in
         for i = 1 to 8 do
           ignore
             (Kernel.spawn kernel client
                ~name:(Printf.sprintf "cl%d" i)
                (fun () ->
                  for _ = 1 to 400 do
                    ignore (Api.call rt b ~proc:"null" [])
                  done))
         done));
  Engine.run engine;
  (match Engine.failures engine with
  | [] -> ()
  | (th, exn) :: _ ->
      Alcotest.failf "thread %s died: %s" (Engine.thread_name th)
        (Printexc.to_string exn));
  let c name =
    Lrpc_obs.Metrics.Counter.value
      (Lrpc_obs.Metrics.counter (Engine.metrics engine) name)
  in
  ( c "lrpc.astack_shard_contended",
    c "lrpc.astack_reshards",
    Api.calls_completed rt )

let test_adaptive_reshard_reduces_contention () =
  let inert_contended, inert_reshards, inert_done =
    reshard_soak (Some (Rt.reshard_policy ~threshold:2.0 ()))
  in
  let live_contended, live_reshards, live_done =
    reshard_soak (Some (Rt.reshard_policy ~threshold:0.05 ~window:16 ()))
  in
  Alcotest.(check int) "inert never resharded" 0 inert_reshards;
  Alcotest.(check bool) "inert arm contended" true (inert_contended > 0);
  Alcotest.(check bool) "controller resharded" true (live_reshards > 0);
  Alcotest.(check bool) "contention reduced" true
    (live_contended < inert_contended);
  Alcotest.(check int) "all calls completed" (8 * 400) inert_done;
  Alcotest.(check int) "same call results" inert_done live_done

(* --- deadlines ------------------------------------------------------------ *)

let test_deadline_at_issue () =
  let w = make_world ~processors:2 () in
  let b = Api.import w.rt ~domain:w.client ~interface:"Fault" in
  in_client w (fun () ->
      let options =
        { Api.Options.default with deadline = Some (Time.us 20) }
      in
      (* Synchronous with a deadline: rides a carrier, aborts cleanly. *)
      (match Api.call_result ~options w.rt b ~proc:"slow" [ V.int 1 ] with
      | Error (Api.Deadline _) -> ()
      | Ok _ -> Alcotest.fail "slow call beat a 20us deadline"
      | Error f -> Alcotest.failf "wrong failure: %s" (Api.failure_to_string f));
      (* Pipelined batch under the same deadline: every handle drains. *)
      let hs =
        List.init 3 (fun i ->
            Api.call_async ~options w.rt b ~proc:"slow" [ V.int i ])
      in
      List.iter
        (function
          | Error (Api.Deadline _) -> ()
          | Ok _ -> Alcotest.fail "batched slow call beat the deadline"
          | Error f ->
              Alcotest.failf "wrong failure: %s" (Api.failure_to_string f))
        (Api.await_all_results w.rt hs));
  (* The abandoned carriers bring the A-stacks home when they return. *)
  Alcotest.(check bool) "pool balanced" true (pool_balanced b "slow");
  check_quiescent w

let test_timeout_during_await_all () =
  let w = make_world ~processors:2 () in
  let b = Api.import w.rt ~domain:w.client ~interface:"Fault" in
  in_client w (fun () ->
      let hs =
        List.init 3 (fun i -> Api.call_async w.rt b ~proc:"slow" [ V.int i ])
      in
      (match Api.await_all ~timeout:(Time.us 10) w.rt hs with
      | _ -> Alcotest.fail "await_all should hit the timeout"
      | exception Rt.Deadline_exceeded _ -> ());
      (* The first handle was consumed by the failed await; the rest are
         still live and must drain normally. *)
      List.iter
        (function
          | Ok [ V.Int _ ] -> ()
          | Ok _ -> Alcotest.fail "wrong result shape"
          | Error f ->
              Alcotest.failf "late call failed: %s" (Api.failure_to_string f))
        (Api.await_all_results w.rt (List.tl hs)));
  Alcotest.(check bool) "pool balanced" true (pool_balanced b "slow");
  check_quiescent w

let test_release_captured_after_timeout () =
  let w = make_world ~processors:2 () in
  let replacement_ran = ref false in
  in_client w (fun () ->
      let b = import w in
      let h = Api.call_async w.rt b ~proc:"hang" [ V.int 1 ] in
      (* Let the carrier get captured inside the server procedure. *)
      Engine.delay w.engine (Time.us 300);
      (match Api.await_result ~timeout:(Time.us 100) w.rt h with
      | Error (Api.Deadline _) -> ()
      | _ -> Alcotest.fail "hang should exceed the timeout");
      (* §5.3 second half: the abandoned carrier can still be released
         with a replacement thread in the client. *)
      let captured =
        match Call_handle.carrier h with
        | Some c -> c
        | None -> Alcotest.fail "carrier missing"
      in
      ignore
        (Api.release_captured w.rt ~captured ~replacement:(fun () ->
             replacement_ran := true)));
  Alcotest.(check bool) "replacement ran" true !replacement_ran;
  check_quiescent w

(* --- the lossy wire ------------------------------------------------------- *)

let test_retry_exhaustion () =
  let w = make_world ~processors:2 () in
  let rb, executed = add_remote ~max_attempts:3 w in
  let plan =
    Fault_plan.make { Fault_plan.none with Fault_plan.seed = 1L; wire_drop = 1.0 }
  in
  Fault_plan.install plan w.rt;
  in_client w (fun () ->
      match Api.call_result w.rt rb ~proc:"recho" [ V.int 5 ] with
      | Error (Api.Failed msg) ->
          Alcotest.(check bool) "names the attempt count" true
            (let n = String.length msg in
             let sub = "after 3 attempts" and m = 16 in
             let rec scan i =
               i + m <= n && (String.sub msg i m = sub || scan (i + 1))
             in
             scan 0)
      | Ok _ -> Alcotest.fail "call should fail: every request is dropped"
      | Error f -> Alcotest.failf "wrong failure: %s" (Api.failure_to_string f));
  Alcotest.(check int) "one retry per extra attempt" 2 (ctr w "net.retries");
  Alcotest.(check int) "server never executed" 0 !executed;
  check_quiescent w

(* Hand-built fault hooks (no plan): drop the reply on the first call's
   first attempt, duplicate the second call's request. At-most-once
   means the server executes each call exactly once either way. *)
let test_at_most_once () =
  let w = make_world ~processors:2 () in
  let rb, executed = add_remote w in
  let f_wire ~proc:_ ~seq ~attempt =
    if seq = 0 && attempt = 1 then
      { Rt.wire_ok with Rt.wf_reply_lost = true }
    else if seq = 1 && attempt = 1 then
      { Rt.wire_ok with Rt.wf_duplicate = true }
    else Rt.wire_ok
  in
  w.rt.Rt.faults <-
    Some
      {
        Rt.f_wire;
        f_packet = (fun ~proc:_ ~seq:_ ~pkt:_ ~attempt:_ -> Rt.packet_ok);
        f_backoff_jitter = (fun ~binding:_ ~attempt:_ -> 0.0);
        f_server_exn = (fun ~proc:_ -> None);
        f_starvation = (fun ~proc:_ -> None);
      };
  in_client w (fun () ->
      (* Reply lost: the retransmit must be answered from the dedup
         cache, not by re-executing the procedure. *)
      (match Api.call_result w.rt rb ~proc:"recho" [ V.int 7 ] with
      | Ok [ V.Int 7 ] -> ()
      | _ -> Alcotest.fail "lossy-reply call should still succeed");
      Alcotest.(check int) "executed once despite retransmit" 1 !executed;
      (* Duplicated request: the second delivery is suppressed. *)
      (match Api.call_result w.rt rb ~proc:"recho" [ V.int 8 ] with
      | Ok [ V.Int 8 ] -> ()
      | _ -> Alcotest.fail "duplicated call should still succeed"));
  Alcotest.(check int) "each call executed exactly once" 2 !executed;
  Alcotest.(check int) "one retry" 1 (ctr w "net.retries");
  Alcotest.(check int) "both duplicates suppressed" 2
    (ctr w "net.duplicates_suppressed");
  check_quiescent w

(* Client-side retry budget: under a wire that drops every reply, an
   unbudgeted client retries up to max_attempts per call; a budgeted
   one spends its token bucket, then gives up with [Overloaded] and a
   backoff hint, and [net.retries_suppressed] counts the suppression. *)
let test_retry_budget_suppression () =
  let w = make_world ~processors:2 () in
  let rb, executed = add_remote ~max_attempts:50 ~retry_budget:0.1 w in
  let plan =
    Fault_plan.make
      { Fault_plan.none with Fault_plan.seed = 3L; wire_reply_drop = 1.0 }
  in
  Fault_plan.install plan w.rt;
  let overloaded = ref 0 and hint = ref 0.0 in
  in_client w (fun () ->
      for i = 1 to 5 do
        match Api.call_result w.rt rb ~proc:"recho" [ V.int i ] with
        | Error (Api.Overloaded { retry_after_us; _ }) ->
            incr overloaded;
            hint := retry_after_us
        | Ok _ -> Alcotest.fail "every reply is dropped"
        | Error f ->
            Alcotest.failf "wrong failure: %s" (Api.failure_to_string f)
      done);
  (* The bucket starts at the 10-token cap and accrues 0.1 per call:
     ~10 retries total across all five calls, not 49 per call. *)
  Alcotest.(check int) "every call gave up on its budget" 5 !overloaded;
  Alcotest.(check bool) "suppressions counted" true
    (ctr w "net.retries_suppressed" >= 5);
  Alcotest.(check bool) "retries bounded by the bucket" true
    (ctr w "net.retries" <= 11);
  Alcotest.(check bool) "positive retry-after hint" true (!hint > 0.0);
  (* The server executed each call's first attempt; replies were lost
     at-most-once-safely, so no call ran more than once. *)
  Alcotest.(check int) "one execution per call" 5 !executed;
  check_quiescent w

(* The at-most-once dedup cache is bounded: with [dedup_capacity] set,
   live entries never exceed the cap even while many lossy calls hold
   their entries across retransmissions, and the peak gauge proves the
   bound was exercised. *)
let test_dedup_cache_bounded () =
  let w = make_world ~processors:4 () in
  let rb, executed = add_remote ~dedup_capacity:4 w in
  (* Every first attempt loses its reply, so each call's dedup entry
     stays live until its second attempt is acked. *)
  let f_wire ~proc:_ ~seq:_ ~attempt =
    if attempt = 1 then { Rt.wire_ok with Rt.wf_reply_lost = true }
    else Rt.wire_ok
  in
  w.rt.Rt.faults <-
    Some
      {
        Rt.f_wire;
        f_packet = (fun ~proc:_ ~seq:_ ~pkt:_ ~attempt:_ -> Rt.packet_ok);
        f_backoff_jitter = (fun ~binding:_ ~attempt:_ -> 0.0);
        f_server_exn = (fun ~proc:_ -> None);
        f_starvation = (fun ~proc:_ -> None);
      };
  let calls_per_client = 5 and clients = 4 in
  for c = 0 to clients - 1 do
    ignore
      (Kernel.spawn w.kernel w.client
         ~name:(Printf.sprintf "lossy-%d" c)
         (fun () ->
           for i = 1 to calls_per_client do
             match Api.call_result w.rt rb ~proc:"recho" [ V.int i ] with
             | Ok [ V.Int v ] when v = i -> ()
             | _ -> Alcotest.fail "lossy call must still succeed"
           done))
  done;
  run_world w;
  let gauge name =
    int_of_float
      (Lrpc_obs.Metrics.Gauge.value
         (Lrpc_obs.Metrics.gauge (Engine.metrics w.engine) name))
  in
  Alcotest.(check int) "cache empty at quiescence" 0
    (gauge "net.dedup_cache_entries");
  Alcotest.(check bool) "cache was exercised" true
    (gauge "net.dedup_cache_peak" >= 2);
  Alcotest.(check bool) "peak never exceeded the capacity" true
    (gauge "net.dedup_cache_peak" <= 4);
  Alcotest.(check int) "every call executed exactly once"
    (calls_per_client * clients)
    !executed;
  Alcotest.(check int) "one retry per call"
    (calls_per_client * clients)
    (ctr w "net.retries");
  check_quiescent w

(* The tentpole's chaos scenario: a seeded retry storm (a window where
   most replies vanish, so clients pile on retransmissions). Without a
   budget the storm feeds itself for the whole window; with one, the
   token buckets drain and the storm decays into fast, typed
   [Overloaded] failures. Both runs must hold every soak invariant —
   including failure accounting. *)
let test_retry_storm_budget_decay () =
  let spec =
    {
      Fault_plan.none with
      Fault_plan.wire_reply_drop = 0.02;
      storm_from_us = 0.0;
      storm_until_us = 1e12;
      storm_reply_drop = 0.85;
    }
  in
  let cfg retry_budget =
    {
      Fault_soak.default with
      Fault_soak.seed = 11L;
      calls = 1200;
      spec;
      remote_share = 0.5;
      retry_budget;
    }
  in
  let unbudgeted = Fault_soak.run (cfg None) in
  let budgeted = Fault_soak.run (cfg (Some 0.1)) in
  Alcotest.(check bool) "unbudgeted soak invariants" true
    (Fault_soak.ok unbudgeted);
  Alcotest.(check bool) "budgeted soak invariants" true
    (Fault_soak.ok budgeted);
  (* The storm must actually rage in the baseline... *)
  Alcotest.(check bool) "storm drove retries" true
    (unbudgeted.Fault_soak.r_retries > 200);
  Alcotest.(check int) "no suppressions without a budget" 0
    unbudgeted.Fault_soak.r_retries_suppressed;
  (* ...and decay under the budget: retransmissions collapse to a small
     fraction, surfacing as suppressions and typed Overloaded outcomes. *)
  Alcotest.(check bool) "budget made the storm decay" true
    (budgeted.Fault_soak.r_retries * 2 < unbudgeted.Fault_soak.r_retries);
  Alcotest.(check bool) "suppressions counted" true
    (budgeted.Fault_soak.r_retries_suppressed > 0);
  Alcotest.(check bool) "overloaded outcomes surfaced" true
    (budgeted.Fault_soak.r_overloaded > 0)

(* --- crash-safe A-stack recovery ------------------------------------------ *)

let test_crash_between_checkout_and_dispatch () =
  let w = make_world () in
  let b = Api.import w.rt ~domain:w.client ~interface:"Fault" in
  in_client w (fun () ->
      (* The A-stack is checked out and the carrier spawned, but the
         server dies before (or just as) the carrier dispatches. *)
      let h = Api.call_async w.rt b ~proc:"slow" [ V.int 3 ] in
      Api.terminate_domain w.rt w.server;
      match Api.await_result w.rt h with
      | Error (Api.Rejected _ | Api.Failed _) -> ()
      | Ok _ -> Alcotest.fail "call into a dead domain should not succeed"
      | Error f -> Alcotest.failf "wrong failure: %s" (Api.failure_to_string f));
  Alcotest.(check bool) "A-stack came home" true (pool_balanced b "slow");
  check_quiescent w

let test_revoked_binding_fails_waiter () =
  let w = make_world ~processors:2 () in
  let b = Api.import w.rt ~domain:w.client ~interface:"Fault" in
  let waiter_result = ref None in
  ignore
    (Kernel.spawn w.kernel w.client ~name:"holder" (fun () ->
         (* Claims slow_one's single A-stack for ~100us. *)
         let h = Api.call_async w.rt b ~proc:"slow_one" [ V.int 1 ] in
         ignore (Api.await_result w.rt h)));
  ignore
    (Kernel.spawn w.kernel w.client ~name:"queued" (fun () ->
         Engine.delay w.engine (Time.us 5);
         (* Blocks in the pool's FIFO behind the holder. *)
         waiter_result := Some (Api.call_result w.rt b ~proc:"slow_one" [ V.int 2 ])));
  ignore
    (Kernel.spawn w.kernel w.client ~name:"killer" (fun () ->
         Engine.delay w.engine (Time.us 30);
         Api.terminate_domain w.rt w.server));
  run_world w;
  (match !waiter_result with
  | Some (Error (Api.Failed msg)) ->
      Alcotest.(check bool) "reason mentions revocation" true
        (let n = String.length msg in
         let sub = "revoked" and m = 7 in
         let rec scan i = i + m <= n && (String.sub msg i m = sub || scan (i + 1)) in
         scan 0)
  | Some (Ok _) -> Alcotest.fail "queued waiter must not be granted a dead binding"
  | Some (Error f) ->
      Alcotest.failf "wrong failure: %s" (Api.failure_to_string f)
  | None -> Alcotest.fail "waiter never resolved");
  Alcotest.(check bool) "A-stack came home" true (pool_balanced b "slow_one");
  check_quiescent w

let test_injected_starvation () =
  let w = make_world () in
  let plan =
    Fault_plan.make
      {
        Fault_plan.none with
        Fault_plan.seed = 42L;
        starvation = 1.0;
        starvation_us = 50.0;
      }
  in
  Fault_plan.install plan w.rt;
  in_client w (fun () ->
      let b = import w in
      let t0 = Engine.now w.engine in
      (match Api.call_result w.rt b ~proc:"null" [] with
      | Ok [] -> ()
      | _ -> Alcotest.fail "starved call should still complete");
      Alcotest.(check bool) "checkout was held up" true
        (Time.to_us (Time.sub (Engine.now w.engine) t0) >= 50.);
      Alcotest.(check bool) "pool balanced" true (pool_balanced b "null"));
  Alcotest.(check bool) "starvation counted" true
    (ctr w "fault.astack_starvations" >= 1);
  check_quiescent w

let test_injected_server_exn () =
  let w = make_world () in
  let plan =
    Fault_plan.make
      { Fault_plan.none with Fault_plan.seed = 9L; server_exn = 1.0 }
  in
  Fault_plan.install plan w.rt;
  in_client w (fun () ->
      let b = import w in
      (match Api.call_result w.rt b ~proc:"add" [ V.int 1; V.int 2 ] with
      | Error (Api.Stub_raised msg) ->
          Alcotest.(check bool) "names the injection" true
            (let n = String.length msg in
             let sub = "injected" and m = 8 in
             let rec scan i =
               i + m <= n && (String.sub msg i m = sub || scan (i + 1))
             in
             scan 0)
      | Ok _ -> Alcotest.fail "stub fault should surface"
      | Error f -> Alcotest.failf "wrong failure: %s" (Api.failure_to_string f));
      Fault_plan.uninstall plan w.rt;
      (* Fault-free fast path restored. *)
      match Api.call_result w.rt b ~proc:"add" [ V.int 1; V.int 2 ] with
      | Ok [ V.Int 3 ] -> ()
      | _ -> Alcotest.fail "call should succeed after uninstall");
  check_quiescent w

(* --- kernel hook handles -------------------------------------------------- *)

let test_hook_handles () =
  let engine = Engine.create ~processors:1 cm in
  let kernel = Kernel.boot engine in
  let d = Kernel.create_domain kernel ~name:"victim" in
  let hits = ref [] in
  let _ : Kernel.hook_handle =
    Kernel.on_terminate ~key:"collector" kernel (fun _ -> hits := 1 :: !hits)
  in
  let _ : Kernel.hook_handle =
    Kernel.on_terminate ~key:"collector" kernel (fun _ -> hits := 2 :: !hits)
  in
  let h3 = Kernel.on_terminate kernel (fun _ -> hits := 3 :: !hits) in
  Kernel.remove_terminate_hook kernel h3;
  Kernel.terminate_domain kernel d;
  Alcotest.(check (list int)) "keyed hook replaced, removed hook silent" [ 2 ]
    !hits

let test_repeated_init () =
  (* Api.init twice on one kernel: the keyed collector hook is replaced,
     not accumulated, and the live runtime's collector still revokes. *)
  let engine = Engine.create ~processors:1 cm in
  let kernel = Kernel.boot engine in
  let _rt1 : Api.t = Api.init kernel in
  let rt2 = Api.init kernel in
  let server = Kernel.create_domain kernel ~name:"srv" in
  let client = Kernel.create_domain kernel ~name:"app" in
  ignore
    (Api.export rt2 ~domain:server iface
       ~impls:
         [
           ("null", fun _ -> []);
           ("add", fun _ -> [ V.int 0 ]);
           ("slow_one", fun _ -> [ V.int 0 ]);
           ("slow", fun _ -> [ V.int 0 ]);
           ("hang", fun _ -> [ V.int 0 ]);
         ]);
  ignore
    (Kernel.spawn kernel client ~name:"c" (fun () ->
         let b = Api.import rt2 ~domain:client ~interface:"Fault" in
         (match Api.call_result rt2 b ~proc:"null" [] with
         | Ok [] -> ()
         | _ -> Alcotest.fail "call before termination should succeed");
         Api.terminate_domain rt2 server;
         match Api.call_result rt2 b ~proc:"null" [] with
         | Error (Api.Rejected _) -> ()
         | _ -> Alcotest.fail "collector should have revoked the binding"));
  Engine.run engine;
  match Engine.failures engine with
  | [] -> ()
  | (th, exn) :: _ ->
      Alcotest.failf "thread %s died: %s" (Engine.thread_name th)
        (Printexc.to_string exn)

(* --- observability -------------------------------------------------------- *)

let test_failure_observability () =
  let w = make_world ~processors:2 () in
  let tr = Trace.create () in
  Engine.set_tracer w.engine (Some tr);
  let got = ref None in
  let b = Api.import w.rt ~domain:w.client ~interface:"Fault" in
  ignore
    (Kernel.spawn w.kernel w.client ~name:"caller" (fun () ->
         got := Some (Api.call_result w.rt b ~proc:"slow" [ V.int 1 ])));
  ignore
    (Kernel.spawn w.kernel w.client ~name:"killer" (fun () ->
         Engine.delay w.engine (Time.us 150);
         Api.terminate_domain w.rt w.server));
  run_world w;
  Engine.set_tracer w.engine None;
  (match !got with
  | Some (Error (Api.Failed _)) -> ()
  | _ -> Alcotest.fail "expected a Failed outcome");
  Alcotest.(check bool) "call-failed event traced" true
    (List.length (Trace.find tr ~kind:"call-failed") >= 1);
  Alcotest.(check bool) "lrpc.calls_failed counted" true
    (Lrpc_obs.Metrics.Counter.value w.rt.Rt.c_calls_failed >= 1);
  (* The failure must survive into the Chrome export. *)
  let chrome = Lrpc_obs.Chrome_trace.to_json tr in
  Alcotest.(check bool) "call-failed in Chrome JSON" true
    (let n = String.length chrome in
     let sub = "call-failed" and m = 11 in
     let rec scan i = i + m <= n && (String.sub chrome i m = sub || scan (i + 1)) in
     scan 0)

let () =
  Alcotest.run "lrpc_fault"
    [
      ( "soak",
        [
          Alcotest.test_case "invariants" `Quick test_soak_invariants;
          Alcotest.test_case "replay identical" `Quick
            test_soak_replay_identical;
          Alcotest.test_case "clustered engine domains" `Quick
            test_soak_clustered_domains_identical;
          Alcotest.test_case "adaptive reshard" `Quick
            test_adaptive_reshard_reduces_contention;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "deadline at issue" `Quick test_deadline_at_issue;
          Alcotest.test_case "timeout during await_all" `Quick
            test_timeout_during_await_all;
          Alcotest.test_case "release_captured after timeout" `Quick
            test_release_captured_after_timeout;
        ] );
      ( "wire",
        [
          Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
          Alcotest.test_case "at-most-once" `Quick test_at_most_once;
          Alcotest.test_case "retry budget" `Quick
            test_retry_budget_suppression;
          Alcotest.test_case "dedup cache bounded" `Quick
            test_dedup_cache_bounded;
          Alcotest.test_case "retry storm decay" `Quick
            test_retry_storm_budget_decay;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "crash before dispatch" `Quick
            test_crash_between_checkout_and_dispatch;
          Alcotest.test_case "revoked binding fails waiter" `Quick
            test_revoked_binding_fails_waiter;
          Alcotest.test_case "injected starvation" `Quick
            test_injected_starvation;
          Alcotest.test_case "injected server exn" `Quick
            test_injected_server_exn;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "handles" `Quick test_hook_handles;
          Alcotest.test_case "repeated init" `Quick test_repeated_init;
        ] );
      ( "observability",
        [
          Alcotest.test_case "failure surface" `Quick
            test_failure_observability;
        ] );
    ]
