(* The Domain-parallel harness must be a pure wall-clock optimisation:
   fanning work across domains may never change a byte of output. The
   determinism suite regenerates the heaviest artifacts (t5, fig2) and
   the chaos soak serially and with 4 domains and compares digests. *)

module Parallel = Lrpc_harness.Parallel
module Suite = Lrpc_experiments.Suite
module Soak = Lrpc_fault.Soak
module Engine = Lrpc_sim.Engine
module Heap = Lrpc_sim.Heap
module Window = Lrpc_sim.Window
module Time = Lrpc_sim.Time

let test_map_preserves_order () =
  let out = Parallel.map ~jobs:4 (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list int)) "input order" [ 1; 4; 9; 16; 25; 36; 49 ] out

let test_map_serial_matches_parallel () =
  let f x = Printf.sprintf "%d:%d" x (x * 31) in
  let items = List.init 23 Fun.id in
  Alcotest.(check (list string))
    "jobs:1 = jobs:4"
    (Parallel.map ~jobs:1 f items)
    (Parallel.map ~jobs:4 f items)

exception Boom of int

let test_map_reraises () =
  Alcotest.check_raises "exception propagates" (Boom 3) (fun () ->
      ignore
        (Parallel.map ~jobs:2
           (fun x -> if x = 3 then raise (Boom x) else x)
           [ 1; 2; 3; 4 ]))

let test_map_clamps_jobs () =
  (* More jobs than items, zero and negative jobs are all legal. *)
  Alcotest.(check (list int)) "jobs > items" [ 2; 4 ]
    (Parallel.map ~jobs:16 (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "jobs:0" [ 2; 4 ]
    (Parallel.map ~jobs:0 (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" []
    (Parallel.map ~jobs:4 (fun x -> x) ([] : int list))

(* --- serial vs parallel artifact digests -------------------------------- *)

let digest_of_run jobs =
  let artifacts = [ "t5"; "f2" ] in
  let outputs =
    Parallel.map ~jobs (fun n -> Suite.run ~quick:true n) artifacts
  in
  Digest.to_hex (Digest.string (String.concat "\x00" outputs))

let test_artifacts_serial_vs_jobs4 () =
  Alcotest.(check string)
    "t5+fig2 digests byte-identical" (digest_of_run 1) (digest_of_run 4)

let soak_digests jobs =
  (* Four independent soaks with distinct seeds, fanned across [jobs]
     domains; each report's trace digest must not care where it ran. *)
  let seeds = [ 0xC0FFEEL; 1L; 2L; 3L ] in
  Parallel.map ~jobs
    (fun seed ->
      let r = Soak.run { Soak.default with Soak.seed; calls = 800 } in
      r.Soak.r_digest)
    seeds

let test_soak_serial_vs_jobs4 () =
  Alcotest.(check (list string))
    "soak trace digests byte-identical" (soak_digests 1) (soak_digests 4)

(* --- engine-domain digests ---------------------------------------------- *)

(* The partitioned engine's contract is stronger than the harness's:
   not only may fanning artifacts across domains not change output,
   sharding ONE simulated machine across host domains may not either.
   Same artifacts and soaks, engine domains 1 vs 2 vs 4. *)

let with_default_domains d f =
  let old = Engine.default_domains () in
  Engine.set_default_domains d;
  Fun.protect ~finally:(fun () -> Engine.set_default_domains old) f

let artifact_digest_domains d =
  (* Serial Parallel.map: the global default-domains knob must not be
     flipped while harness workers are constructing engines. *)
  with_default_domains d (fun () ->
      let outputs = List.map (fun n -> Suite.run ~quick:true n) [ "t5"; "f2" ] in
      Digest.to_hex (Digest.string (String.concat "\x00" outputs)))

let test_artifacts_across_engine_domains () =
  let base = artifact_digest_domains 1 in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "t5+fig2 digest, %d engine domains" d)
        base (artifact_digest_domains d))
    [ 2; 4 ]

let soak_digest_domains ~seed d =
  let r =
    Soak.run { Soak.default with Soak.seed; calls = 800; engine_domains = d }
  in
  r.Soak.r_digest

let test_soak_across_engine_domains () =
  List.iter
    (fun seed ->
      let base = soak_digest_domains ~seed 1 in
      List.iter
        (fun d ->
          Alcotest.(check string)
            (Printf.sprintf "soak digest, seed %Ld, %d engine domains" seed d)
            base
            (soak_digest_domains ~seed d))
        [ 2; 4 ])
    [ 0xC0FFEEL; 7L ]

(* --- windowed merge order (property) ------------------------------------ *)

(* The ordering fact the whole design rests on: a (time, key) stream
   sharded across any number of heaps and drained through Window.select
   pops in exactly the order one big heap gives. Keys are unique (the
   engine assigns them from disjoint counters), times collide freely. *)
let merge_matches_serial_prop =
  QCheck.Test.make ~count:300 ~name:"windowed merge = serial heap order"
    QCheck.(
      pair (int_range 1 6)
        (small_list (pair (int_range 0 7) (int_range 0 40))))
    (fun (nparts, events) ->
      let shards = Array.init nparts (fun _ -> Heap.create ()) in
      let serial = Heap.create () in
      List.iteri
        (fun i (shard, t) ->
          let time = Time.us t in
          (* i doubles as the unique tiebreak key and the payload. *)
          Heap.push_key shards.(shard mod nparts) ~time ~key:i i;
          Heap.push_key serial ~time ~key:i i)
        events;
      let drain_merged () =
        let out = ref [] in
        let rec go () =
          match Window.select shards with
          | -1 -> ()
          | p ->
              out := Heap.take shards.(p) :: !out;
              go ()
        in
        go ();
        List.rev !out
      in
      let drain_serial () =
        let out = ref [] in
        while not (Heap.is_empty serial) do
          out := Heap.take serial :: !out
        done;
        List.rev !out
      in
      drain_merged () = drain_serial ())

let () =
  Alcotest.run "lrpc_harness"
    [
      ( "parallel map",
        [
          Alcotest.test_case "preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "serial = parallel" `Quick
            test_map_serial_matches_parallel;
          Alcotest.test_case "re-raises" `Quick test_map_reraises;
          Alcotest.test_case "clamps jobs" `Quick test_map_clamps_jobs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "artifacts serial vs --jobs 4" `Slow
            test_artifacts_serial_vs_jobs4;
          Alcotest.test_case "chaos soak serial vs --jobs 4" `Slow
            test_soak_serial_vs_jobs4;
        ] );
      ( "engine domains",
        [
          Alcotest.test_case "artifacts, engine domains 1/2/4" `Slow
            test_artifacts_across_engine_domains;
          Alcotest.test_case "chaos soaks, engine domains 1/2/4" `Slow
            test_soak_across_engine_domains;
          QCheck_alcotest.to_alcotest merge_matches_serial_prop;
        ] );
    ]
