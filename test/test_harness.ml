(* The Domain-parallel harness must be a pure wall-clock optimisation:
   fanning work across domains may never change a byte of output. The
   determinism suite regenerates the heaviest artifacts (t5, fig2) and
   the chaos soak serially and with 4 domains and compares digests. *)

module Parallel = Lrpc_harness.Parallel
module Suite = Lrpc_experiments.Suite
module Soak = Lrpc_fault.Soak

let test_map_preserves_order () =
  let out = Parallel.map ~jobs:4 (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list int)) "input order" [ 1; 4; 9; 16; 25; 36; 49 ] out

let test_map_serial_matches_parallel () =
  let f x = Printf.sprintf "%d:%d" x (x * 31) in
  let items = List.init 23 Fun.id in
  Alcotest.(check (list string))
    "jobs:1 = jobs:4"
    (Parallel.map ~jobs:1 f items)
    (Parallel.map ~jobs:4 f items)

exception Boom of int

let test_map_reraises () =
  Alcotest.check_raises "exception propagates" (Boom 3) (fun () ->
      ignore
        (Parallel.map ~jobs:2
           (fun x -> if x = 3 then raise (Boom x) else x)
           [ 1; 2; 3; 4 ]))

let test_map_clamps_jobs () =
  (* More jobs than items, zero and negative jobs are all legal. *)
  Alcotest.(check (list int)) "jobs > items" [ 2; 4 ]
    (Parallel.map ~jobs:16 (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "jobs:0" [ 2; 4 ]
    (Parallel.map ~jobs:0 (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" []
    (Parallel.map ~jobs:4 (fun x -> x) ([] : int list))

(* --- serial vs parallel artifact digests -------------------------------- *)

let digest_of_run jobs =
  let artifacts = [ "t5"; "f2" ] in
  let outputs =
    Parallel.map ~jobs (fun n -> Suite.run ~quick:true n) artifacts
  in
  Digest.to_hex (Digest.string (String.concat "\x00" outputs))

let test_artifacts_serial_vs_jobs4 () =
  Alcotest.(check string)
    "t5+fig2 digests byte-identical" (digest_of_run 1) (digest_of_run 4)

let soak_digests jobs =
  (* Four independent soaks with distinct seeds, fanned across [jobs]
     domains; each report's trace digest must not care where it ran. *)
  let seeds = [ 0xC0FFEEL; 1L; 2L; 3L ] in
  Parallel.map ~jobs
    (fun seed ->
      let r = Soak.run { Soak.default with Soak.seed; calls = 800 } in
      r.Soak.r_digest)
    seeds

let test_soak_serial_vs_jobs4 () =
  Alcotest.(check (list string))
    "soak trace digests byte-identical" (soak_digests 1) (soak_digests 4)

let () =
  Alcotest.run "lrpc_harness"
    [
      ( "parallel map",
        [
          Alcotest.test_case "preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "serial = parallel" `Quick
            test_map_serial_matches_parallel;
          Alcotest.test_case "re-raises" `Quick test_map_reraises;
          Alcotest.test_case "clamps jobs" `Quick test_map_clamps_jobs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "artifacts serial vs --jobs 4" `Slow
            test_artifacts_serial_vs_jobs4;
          Alcotest.test_case "chaos soak serial vs --jobs 4" `Slow
            test_soak_serial_vs_jobs4;
        ] );
    ]
