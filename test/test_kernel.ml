open Lrpc_sim
open Lrpc_kernel

let cm = Cost_model.cvax_firefly

let boot ?(processors = 1) () =
  let e = Engine.create ~processors cm in
  (e, Kernel.boot e)

(* --- domains --------------------------------------------------------------- *)

let test_domain_ids_unique () =
  let _, k = boot () in
  let a = Kernel.create_domain k ~name:"a" in
  let b = Kernel.create_domain k ~name:"b" in
  Alcotest.(check bool) "distinct" true (a.Pdomain.id <> b.Pdomain.id);
  Alcotest.(check bool) "kernel is 0" true ((Kernel.kernel_domain k).Pdomain.id = 0);
  Alcotest.(check int) "find" a.Pdomain.id
    (Option.get (Kernel.find_domain k a.Pdomain.id)).Pdomain.id

let test_domain_machine () =
  let _, k = boot () in
  let local = Kernel.create_domain k ~name:"l" in
  let remote = Kernel.create_domain k ~machine:2 ~name:"r" in
  Alcotest.(check bool) "local pair" true (Pdomain.is_local local local);
  Alcotest.(check bool) "remote pair" false (Pdomain.is_local local remote)

(* --- memory --------------------------------------------------------------- *)

let test_page_budget_enforced () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~page_limit:10 ~name:"small" in
  let pages = Kernel.alloc_pages k d 10 in
  Alcotest.(check int) "got 10" 10 (List.length pages);
  Alcotest.check_raises "budget" Out_of_memory (fun () ->
      ignore (Kernel.alloc_pages k d 1));
  Kernel.free_pages k d pages;
  Alcotest.(check int) "freed" 0 d.Pdomain.pages_allocated

let test_pages_never_reused () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let a = Kernel.alloc_pages k d 5 in
  Kernel.free_pages k d a;
  let b = Kernel.alloc_pages k d 5 in
  List.iter
    (fun p -> Alcotest.(check bool) "fresh ids" false (List.mem p a))
    b

let test_region_rounds_to_pages () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  (* 513 bytes on 512-byte pages = 2 pages *)
  let r = Kernel.alloc_region k ~owner:d ~name:"r" ~bytes:513 ~mapped:[ d ] in
  Alcotest.(check int) "2 pages" 2 (List.length r.Vm.pages);
  Alcotest.(check int) "charged" 2 d.Pdomain.pages_allocated

let test_region_release () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let r = Kernel.alloc_region k ~owner:d ~name:"r" ~bytes:512 ~mapped:[ d ] in
  Kernel.release_region k ~owner:d r;
  Alcotest.(check bool) "invalid" false r.Vm.region_valid;
  Alcotest.(check int) "pages back" 0 d.Pdomain.pages_allocated;
  Alcotest.(check bool) "no access" false (Vm.accessible r d)

let test_dead_domain_cannot_allocate () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  Kernel.terminate_domain k d;
  Alcotest.check_raises "terminated" (Kernel.Domain_terminated "d") (fun () ->
      ignore (Kernel.alloc_pages k d 1))

(* --- Vm data movement -------------------------------------------------------- *)

let test_vm_write_read () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let r = Kernel.alloc_region k ~owner:d ~name:"r" ~bytes:64 ~mapped:[ d ] in
  Vm.write_bytes ~by:d r ~off:8 (Bytes.of_string "payload");
  let back = Vm.read_bytes ~by:d r ~off:8 ~len:7 in
  Alcotest.(check string) "roundtrip" "payload" (Bytes.to_string back)

let test_vm_access_control () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let other = Kernel.create_domain k ~name:"other" in
  let r = Kernel.alloc_region k ~owner:d ~name:"r" ~bytes:64 ~mapped:[ d ] in
  (match Vm.write_bytes ~by:other r ~off:0 (Bytes.of_string "x") with
  | exception Vm.Protection_violation _ -> ()
  | _ -> Alcotest.fail "unmapped write allowed");
  Vm.map_into r other;
  Vm.write_bytes ~by:other r ~off:0 (Bytes.of_string "x");
  Vm.unmap_from r other;
  match Vm.peek ~by:other r ~off:0 ~len:1 with
  | exception Vm.Protection_violation _ -> ()
  | _ -> Alcotest.fail "unmapped peek allowed"

let test_vm_audit_counts () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let r = Kernel.alloc_region k ~owner:d ~name:"r" ~bytes:64 ~mapped:[ d ] in
  let audit = Vm.audit_create () in
  Vm.write_bytes ~audit ~label:"A" ~by:d r ~off:0 (Bytes.create 10);
  ignore (Vm.read_bytes ~audit ~label:"F" ~by:d r ~off:0 ~len:10);
  Alcotest.(check int) "two ops" 2 audit.Vm.copy_ops;
  Alcotest.(check int) "twenty bytes" 20 audit.Vm.bytes_copied;
  Alcotest.(check (list string)) "labels" [ "F"; "A" ] audit.Vm.labels;
  Vm.audit_reset audit;
  Alcotest.(check int) "reset" 0 audit.Vm.copy_ops

let test_vm_copy_charges_time () =
  let e, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let r = Kernel.alloc_region k ~owner:d ~name:"r" ~bytes:512 ~mapped:[ d ] in
  let elapsed = ref 0 in
  ignore
    (Kernel.spawn k d (fun () ->
         let t0 = Engine.now e in
         Vm.write_bytes ~engine:e ~by:d r ~off:0 (Bytes.create 100);
         elapsed := Time.sub (Engine.now e) t0));
  Engine.run e;
  (* per_value + 100 * per_byte = 1667 + 16700 ns *)
  Alcotest.(check int) "copy cost" 18_367 !elapsed

let test_vm_rate_override () =
  let e, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let r = Kernel.alloc_region k ~owner:d ~name:"r" ~bytes:512 ~mapped:[ d ] in
  let elapsed = ref 0 in
  ignore
    (Kernel.spawn k d (fun () ->
         let t0 = Engine.now e in
         Vm.write_bytes ~engine:e ~rate:(Time.us 1, Time.ns 10) ~by:d r ~off:0
           (Bytes.create 100);
         elapsed := Time.sub (Engine.now e) t0));
  Engine.run e;
  Alcotest.(check int) "override rate" 2_000 !elapsed

let test_region_to_region () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let a = Kernel.alloc_region k ~owner:d ~name:"a" ~bytes:64 ~mapped:[ d ] in
  let b = Kernel.alloc_region k ~owner:d ~name:"b" ~bytes:64 ~mapped:[ d ] in
  Vm.poke ~by:d a ~off:0 (Bytes.of_string "transit");
  Vm.region_to_region ~src:a ~src_off:0 ~dst:b ~dst_off:8 ~len:7 ();
  Alcotest.(check string) "arrived" "transit"
    (Bytes.to_string (Vm.peek ~by:d b ~off:8 ~len:7))

(* --- traps, spawn, termination -------------------------------------------------- *)

let test_trap_charges () =
  let e, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  ignore (Kernel.spawn k d (fun () -> Kernel.trap k));
  Engine.run e;
  let traps =
    List.assoc_opt Category.Trap (Engine.breakdown e) |> Option.value ~default:0
  in
  Alcotest.(check int) "18us" cm.Cost_model.trap traps

let test_spawn_tracked () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let th = Kernel.spawn k d (fun () -> ()) in
  Alcotest.(check bool) "tracked" true (List.memq th d.Pdomain.threads)

let test_terminate_runs_hooks_once () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  let hits = ref [] in
  let _ : Kernel.hook_handle =
    Kernel.on_terminate k (fun dom -> hits := ("first", dom.Pdomain.name) :: !hits)
  in
  let _ : Kernel.hook_handle =
    Kernel.on_terminate k (fun dom ->
        hits := ("second", dom.Pdomain.name) :: !hits)
  in
  Kernel.terminate_domain k d;
  Kernel.terminate_domain k d;
  (* idempotent *)
  Alcotest.(check (list (pair string string)))
    "hooks in order, once"
    [ ("second", "d"); ("first", "d") ]
    !hits;
  Alcotest.(check bool) "dead" true (d.Pdomain.state = Pdomain.Dead)

let test_terminate_kills_threads () =
  (* Two processors: the looping victim never yields its CPU, so the
     killer needs one of its own. *)
  let e, k = boot ~processors:2 () in
  let d = Kernel.create_domain k ~name:"d" in
  let th =
    Kernel.spawn k d (fun () ->
        while true do
          Engine.delay e (Time.us 10)
        done)
  in
  ignore
    (Kernel.spawn k (Kernel.create_domain k ~name:"killer") (fun () ->
         Engine.delay e (Time.us 100);
         Kernel.terminate_domain k d));
  Engine.run e;
  Alcotest.(check bool) "looping thread killed" false (Engine.alive th);
  Alcotest.(check (list pass)) "kill is clean" [] (Engine.failures e)

(* --- idle-processor management -------------------------------------------------- *)

let test_find_idle_in_context () =
  let e, k = boot ~processors:2 () in
  let d = Kernel.create_domain k ~name:"d" in
  Alcotest.(check bool) "none initially" true
    (Kernel.find_idle_processor_in_context k d = None);
  (Engine.cpus e).(1).Engine.context <- Some d.Pdomain.id;
  (match Kernel.find_idle_processor_in_context k d with
  | Some c -> Alcotest.(check int) "cpu1" 1 c.Engine.idx
  | None -> Alcotest.fail "should find cpu1");
  (* a busy processor in the right context does not count *)
  ignore
    (Kernel.spawn k d ~home:1 (fun () -> Engine.delay e (Time.us 10)));
  Alcotest.(check bool) "busy excluded" true
    (Kernel.find_idle_processor_in_context k d = None)

let test_note_miss_prods_idle () =
  let e, k = boot ~processors:2 () in
  Kernel.set_domain_caching k true;
  let d = Kernel.create_domain k ~name:"hot" in
  Alcotest.(check int) "no misses yet" 0 (Kernel.context_misses k d);
  Kernel.note_context_miss k d;
  Alcotest.(check int) "one miss" 1 (Kernel.context_misses k d);
  (* an idle processor was prodded into the hot domain's context *)
  let claimed =
    Array.exists
      (fun c -> c.Engine.context = Some d.Pdomain.id)
      (Engine.cpus e)
  in
  Alcotest.(check bool) "idle cpu claimed" true claimed

let test_note_miss_respects_hotter_domain () =
  let e, k = boot ~processors:1 () in
  Kernel.set_domain_caching k true;
  let hot = Kernel.create_domain k ~name:"hot" in
  let cold = Kernel.create_domain k ~name:"cold" in
  for _ = 1 to 5 do
    Kernel.note_context_miss k hot
  done;
  (* the single idle cpu belongs to hot now *)
  Alcotest.(check (option int)) "hot owns it" (Some hot.Pdomain.id)
    (Engine.cpus e).(0).Engine.context;
  Kernel.note_context_miss k cold;
  (* one miss does not evict a five-miss domain *)
  Alcotest.(check (option int)) "hot keeps it" (Some hot.Pdomain.id)
    (Engine.cpus e).(0).Engine.context;
  for _ = 1 to 10 do
    Kernel.note_context_miss k cold
  done;
  Alcotest.(check (option int)) "cold out-misses hot" (Some cold.Pdomain.id)
    (Engine.cpus e).(0).Engine.context

let test_miss_counting_and_ewma () =
  let _, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  Alcotest.(check int) "no misses" 0 (Kernel.context_misses k d);
  Alcotest.(check (float 0.0)) "zero ewma" 0.0 (Kernel.context_miss_ewma k d);
  for _ = 1 to 3 do
    Kernel.note_context_miss k d
  done;
  Alcotest.(check int) "raw count" 3 (Kernel.context_misses k d);
  (* with no simulated time between misses there is nothing to decay *)
  Alcotest.(check (float 0.001)) "undecayed ewma" 3.0
    (Kernel.context_miss_ewma k d)

let test_miss_ewma_decays () =
  let e, k = boot () in
  let d = Kernel.create_domain k ~name:"d" in
  for _ = 1 to 4 do
    Kernel.note_context_miss k d
  done;
  (* advance simulated time by one half-life: the EWMA halves while the
     raw counter stands still *)
  ignore (Kernel.spawn k d (fun () -> Engine.delay e (Time.us 1000)));
  Engine.run e;
  Alcotest.(check int) "raw count unchanged" 4 (Kernel.context_misses k d);
  Alcotest.(check (float 0.01)) "halved" 2.0 (Kernel.context_miss_ewma k d)

let test_miss_prod_needs_margin () =
  let e, k = boot ~processors:1 () in
  Kernel.set_domain_caching k true;
  let hot = Kernel.create_domain k ~name:"hot" in
  let cold = Kernel.create_domain k ~name:"cold" in
  Kernel.note_context_miss k hot;
  Kernel.note_context_miss k hot;
  Alcotest.(check (option int)) "hot claims the idle cpu"
    (Some hot.Pdomain.id)
    (Engine.cpus e).(0).Engine.context;
  (* pulling even (EWMA 2 vs 2) is not enough: the eviction needs a 0.5
     margin over the held context *)
  Kernel.note_context_miss k cold;
  Kernel.note_context_miss k cold;
  Alcotest.(check (option int)) "tie does not evict" (Some hot.Pdomain.id)
    (Engine.cpus e).(0).Engine.context;
  Kernel.note_context_miss k cold;
  Alcotest.(check (option int)) "a clear gap does" (Some cold.Pdomain.id)
    (Engine.cpus e).(0).Engine.context;
  Alcotest.(check bool) "prods counted" true (Kernel.prods k >= 2)

let test_idle_consult_retags_hottest () =
  let e, k = boot ~processors:1 () in
  let hot = Kernel.create_domain k ~name:"hot" in
  let cold = Kernel.create_domain k ~name:"cold" in
  (* record the miss history with caching off so no miss-time prod fires;
     only the engine's idle consult may retag below *)
  for _ = 1 to 5 do
    Kernel.note_context_miss k hot
  done;
  Kernel.note_context_miss k cold;
  Kernel.set_domain_caching k true;
  (* a thread of the cold domain runs and finishes: the processor goes
     idle holding cold's context, and the idle consult preloads hot,
     which out-misses it past the 2x hysteresis (5 > 2*1 + 0.5) *)
  ignore (Kernel.spawn k cold (fun () -> ()));
  Engine.run e;
  Alcotest.(check (option int)) "retagged to hot" (Some hot.Pdomain.id)
    (Engine.cpus e).(0).Engine.context;
  Alcotest.(check int) "idle retag counted" 1 (Kernel.idle_retags k)

let test_idle_consult_hysteresis_holds () =
  let e, k = boot ~processors:1 () in
  let hot = Kernel.create_domain k ~name:"hot" in
  let cold = Kernel.create_domain k ~name:"cold" in
  for _ = 1 to 4 do
    Kernel.note_context_miss k hot
  done;
  Kernel.note_context_miss k cold;
  Kernel.note_context_miss k cold;
  Kernel.set_domain_caching k true;
  (* 4 vs 2 is under the 2x + 0.5 bar: a warm context is not perturbed *)
  ignore (Kernel.spawn k cold (fun () -> ()));
  Engine.run e;
  Alcotest.(check (option int)) "cold keeps the processor"
    (Some cold.Pdomain.id)
    (Engine.cpus e).(0).Engine.context;
  Alcotest.(check int) "no idle retag" 0 (Kernel.idle_retags k)

let test_exchange_hit_accounting () =
  let e, k = boot ~processors:2 () in
  Kernel.set_domain_caching k true;
  let d = Kernel.create_domain k ~name:"d" in
  Kernel.note_context_miss k d;
  Alcotest.(check int) "one prod" 1 (Kernel.prods k);
  let prodded =
    Array.to_list (Engine.cpus e)
    |> List.find_opt (fun c -> c.Engine.context = Some d.Pdomain.id)
  in
  let cpu = Option.get prodded in
  Alcotest.(check int) "no hits yet" 0 (Kernel.context_hits k d);
  Kernel.note_context_hit ~cpu k d;
  Alcotest.(check int) "hit counted" 1 (Kernel.context_hits k d);
  let snap = Lrpc_obs.Metrics.snapshot (Engine.metrics e) in
  (match Lrpc_obs.Metrics.get_histogram snap "kernel.prod_to_hit_us" with
  | Some h -> Alcotest.(check int) "prod-to-hit sample" 1 h.Lrpc_obs.Metrics.hs_count
  | None -> Alcotest.fail "prod_to_hit_us histogram missing");
  (* the prod is consumed: a second hit on the same processor is an
     ordinary exchange, not another prod-to-hit sample *)
  Kernel.note_context_hit ~cpu k d;
  Alcotest.(check int) "second hit counted" 2 (Kernel.context_hits k d);
  let snap = Lrpc_obs.Metrics.snapshot (Engine.metrics e) in
  match Lrpc_obs.Metrics.get_histogram snap "kernel.prod_to_hit_us" with
  | Some h -> Alcotest.(check int) "still one sample" 1 h.Lrpc_obs.Metrics.hs_count
  | None -> Alcotest.fail "prod_to_hit_us histogram missing"

let () =
  Alcotest.run "lrpc_kernel"
    [
      ( "domains",
        [
          Alcotest.test_case "ids" `Quick test_domain_ids_unique;
          Alcotest.test_case "machines" `Quick test_domain_machine;
        ] );
      ( "memory",
        [
          Alcotest.test_case "budget" `Quick test_page_budget_enforced;
          Alcotest.test_case "fresh pages" `Quick test_pages_never_reused;
          Alcotest.test_case "page rounding" `Quick test_region_rounds_to_pages;
          Alcotest.test_case "release" `Quick test_region_release;
          Alcotest.test_case "dead domain" `Quick test_dead_domain_cannot_allocate;
        ] );
      ( "vm",
        [
          Alcotest.test_case "write/read" `Quick test_vm_write_read;
          Alcotest.test_case "access control" `Quick test_vm_access_control;
          Alcotest.test_case "audit" `Quick test_vm_audit_counts;
          Alcotest.test_case "copy cost" `Quick test_vm_copy_charges_time;
          Alcotest.test_case "rate override" `Quick test_vm_rate_override;
          Alcotest.test_case "region to region" `Quick test_region_to_region;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "trap" `Quick test_trap_charges;
          Alcotest.test_case "spawn tracked" `Quick test_spawn_tracked;
          Alcotest.test_case "terminate hooks" `Quick test_terminate_runs_hooks_once;
          Alcotest.test_case "terminate kills" `Quick test_terminate_kills_threads;
        ] );
      ( "idle processors",
        [
          Alcotest.test_case "find idle" `Quick test_find_idle_in_context;
          Alcotest.test_case "prodding" `Quick test_note_miss_prods_idle;
          Alcotest.test_case "hotter wins" `Quick test_note_miss_respects_hotter_domain;
          Alcotest.test_case "miss counting" `Quick test_miss_counting_and_ewma;
          Alcotest.test_case "ewma decay" `Quick test_miss_ewma_decays;
          Alcotest.test_case "prod margin" `Quick test_miss_prod_needs_margin;
          Alcotest.test_case "idle retag" `Quick test_idle_consult_retags_hottest;
          Alcotest.test_case "idle hysteresis" `Quick test_idle_consult_hysteresis_holds;
          Alcotest.test_case "exchange hits" `Quick test_exchange_hit_accounting;
        ] );
    ]
