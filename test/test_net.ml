open Lrpc_sim
open Lrpc_kernel
open Lrpc_core
module Netrpc = Lrpc_net.Netrpc
module I = Lrpc_idl.Types
module V = Lrpc_idl.Value

let iface =
  I.interface "Echo"
    [
      I.proc ~result:I.Int32 "echo" [ I.param "x" I.Int32 ];
      I.proc ~result:(I.Var_bytes 4096) "blob" [ I.param "b" (I.Var_bytes 4096) ];
    ]

let impls =
  [
    ("echo", fun args -> match args with [ V.Int x ] -> [ V.int x ] | _ -> assert false);
    ("blob", fun args -> match args with [ V.Bytes b ] -> [ V.bytes b ] | _ -> assert false);
  ]

let make_world () =
  let engine = Engine.create Cost_model.cvax_firefly in
  let kernel = Kernel.boot engine in
  let rt = Api.init kernel in
  let client = Kernel.create_domain kernel ~name:"client" in
  let server = Kernel.create_domain kernel ~machine:1 ~name:"remote" in
  (engine, kernel, rt, client, server)

let test_wire_time_null () =
  Alcotest.(check int) "2660us" (Time.us 2660) (Netrpc.wire_time ~bytes:0)

let test_wire_time_grows_with_bytes () =
  let small = Netrpc.wire_time ~bytes:100 in
  let large = Netrpc.wire_time ~bytes:1000 in
  Alcotest.(check bool) "monotone" true (Time.compare large small > 0)

let test_wire_time_multipacket_penalty () =
  (* just under vs just over one MTU: the packet boundary costs extra
     beyond the per-byte difference *)
  let under = Netrpc.wire_time ~bytes:1400 in
  let over = Netrpc.wire_time ~bytes:1600 in
  let per_byte_only = Time.ns (200 * 800) in
  Alcotest.(check bool) "discontinuity" true
    (Time.compare (Time.sub over under) per_byte_only > 0)

let test_remote_call_roundtrip () =
  let engine, kernel, rt, client, server = make_world () in
  Netrpc.reset_remote_calls rt;
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  let got = ref 0 in
  ignore
    (Kernel.spawn kernel client (fun () ->
         match Api.call rt b ~proc:"echo" [ V.int 55 ] with
         | [ V.Int x ] -> got := x
         | _ -> ()));
  Engine.run engine;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine);
  Alcotest.(check int) "result" 55 !got;
  Alcotest.(check int) "counted" 1 (Netrpc.remote_calls rt)

let test_remote_call_slow () =
  let engine, kernel, rt, client, server = make_world () in
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  let elapsed = ref 0 in
  ignore
    (Kernel.spawn kernel client (fun () ->
         let t0 = Engine.now engine in
         ignore (Api.call rt b ~proc:"echo" [ V.int 1 ]);
         elapsed := Time.sub (Engine.now engine) t0));
  Engine.run engine;
  Alcotest.(check bool) "millisecond scale" true (!elapsed > Time.us 2600);
  (* and the network time is attributed to the Network category *)
  let net =
    List.assoc_opt Category.Network (Engine.breakdown engine)
    |> Option.value ~default:0
  in
  Alcotest.(check bool) "network category" true (net > Time.us 2600)

let test_local_pair_rejected () =
  let _, kernel, rt, client, _ = make_world () in
  let local_server = Kernel.create_domain kernel ~name:"local" in
  match Netrpc.import_remote rt ~client ~server:local_server iface ~impls with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "local pair accepted as remote"

let test_remote_conformance_checked () =
  let engine, kernel, rt, client, server = make_world () in
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  ignore
    (Kernel.spawn kernel client (fun () ->
         (match Api.call rt b ~proc:"echo" [ V.bool true ] with
         | exception V.Conformance_error _ -> ()
         | _ -> Alcotest.fail "bad type accepted");
         match Api.call rt b ~proc:"missing" [] with
         | exception Rt.Bad_binding _ -> ()
         | _ -> Alcotest.fail "missing proc accepted"));
  Engine.run engine;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine)

let test_remote_binding_has_remote_bit () =
  let _, _, rt, client, server = make_world () in
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  Alcotest.(check bool) "remote bit" true (b.Rt.b_remote <> None)

let () =
  Alcotest.run "lrpc_net"
    [
      ( "wire model",
        [
          Alcotest.test_case "null time" `Quick test_wire_time_null;
          Alcotest.test_case "per byte" `Quick test_wire_time_grows_with_bytes;
          Alcotest.test_case "multipacket" `Quick test_wire_time_multipacket_penalty;
        ] );
      ( "remote calls",
        [
          Alcotest.test_case "roundtrip" `Quick test_remote_call_roundtrip;
          Alcotest.test_case "slow" `Quick test_remote_call_slow;
          Alcotest.test_case "local rejected" `Quick test_local_pair_rejected;
          Alcotest.test_case "conformance" `Quick test_remote_conformance_checked;
          Alcotest.test_case "remote bit" `Quick test_remote_binding_has_remote_bit;
        ] );
    ]
