open Lrpc_sim
open Lrpc_kernel
open Lrpc_core
module Netrpc = Lrpc_net.Netrpc
module Erpc = Lrpc_net.Erpc
module Fault_plan = Lrpc_fault.Plan
module Metrics = Lrpc_obs.Metrics
module I = Lrpc_idl.Types
module V = Lrpc_idl.Value

let iface =
  I.interface "Echo"
    [
      I.proc ~result:I.Int32 "echo" [ I.param "x" I.Int32 ];
      I.proc ~result:(I.Var_bytes 4096) "blob" [ I.param "b" (I.Var_bytes 4096) ];
    ]

let impls =
  [
    ("echo", fun args -> match args with [ V.Int x ] -> [ V.int x ] | _ -> assert false);
    ("blob", fun args -> match args with [ V.Bytes b ] -> [ V.bytes b ] | _ -> assert false);
  ]

let make_world () =
  let engine = Engine.create Cost_model.cvax_firefly in
  let kernel = Kernel.boot engine in
  let rt = Api.init kernel in
  let client = Kernel.create_domain kernel ~name:"client" in
  let server = Kernel.create_domain kernel ~machine:1 ~name:"remote" in
  (engine, kernel, rt, client, server)

let test_wire_time_null () =
  Alcotest.(check int) "2660us" (Time.us 2660) (Netrpc.wire_time ~bytes:0)

let test_wire_time_grows_with_bytes () =
  let small = Netrpc.wire_time ~bytes:100 in
  let large = Netrpc.wire_time ~bytes:1000 in
  Alcotest.(check bool) "monotone" true (Time.compare large small > 0)

let test_wire_time_multipacket_penalty () =
  (* just under vs just over one MTU: the packet boundary costs extra
     beyond the per-byte difference *)
  let under = Netrpc.wire_time ~bytes:1400 in
  let over = Netrpc.wire_time ~bytes:1600 in
  let per_byte_only = Time.ns (200 * 800) in
  Alcotest.(check bool) "discontinuity" true
    (Time.compare (Time.sub over under) per_byte_only > 0)

let test_remote_call_roundtrip () =
  let engine, kernel, rt, client, server = make_world () in
  Netrpc.reset_remote_calls rt;
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  let got = ref 0 in
  ignore
    (Kernel.spawn kernel client (fun () ->
         match Api.call rt b ~proc:"echo" [ V.int 55 ] with
         | [ V.Int x ] -> got := x
         | _ -> ()));
  Engine.run engine;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine);
  Alcotest.(check int) "result" 55 !got;
  Alcotest.(check int) "counted" 1 (Netrpc.remote_calls rt)

let test_remote_call_slow () =
  let engine, kernel, rt, client, server = make_world () in
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  let elapsed = ref 0 in
  ignore
    (Kernel.spawn kernel client (fun () ->
         let t0 = Engine.now engine in
         ignore (Api.call rt b ~proc:"echo" [ V.int 1 ]);
         elapsed := Time.sub (Engine.now engine) t0));
  Engine.run engine;
  Alcotest.(check bool) "millisecond scale" true (!elapsed > Time.us 2600);
  (* and the network time is attributed to the Network category *)
  let net =
    List.assoc_opt Category.Network (Engine.breakdown engine)
    |> Option.value ~default:0
  in
  Alcotest.(check bool) "network category" true (net > Time.us 2600)

let test_local_pair_rejected () =
  let _, kernel, rt, client, _ = make_world () in
  let local_server = Kernel.create_domain kernel ~name:"local" in
  match Netrpc.import_remote rt ~client ~server:local_server iface ~impls with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "local pair accepted as remote"

let test_remote_conformance_checked () =
  let engine, kernel, rt, client, server = make_world () in
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  ignore
    (Kernel.spawn kernel client (fun () ->
         (match Api.call rt b ~proc:"echo" [ V.bool true ] with
         | exception V.Conformance_error _ -> ()
         | _ -> Alcotest.fail "bad type accepted");
         match Api.call rt b ~proc:"missing" [] with
         | exception Rt.Bad_binding _ -> ()
         | _ -> Alcotest.fail "missing proc accepted"));
  Engine.run engine;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine)

let test_remote_binding_has_remote_bit () =
  let _, _, rt, client, server = make_world () in
  let b = Netrpc.import_remote rt ~client ~server iface ~impls in
  Alcotest.(check bool) "remote bit" true (b.Rt.b_remote <> None)

(* --- the packet-granular (eRPC-style) transport -------------------------- *)

let ctr engine name =
  Metrics.Counter.value (Metrics.counter (Engine.metrics engine) name)

let gauge engine name =
  Metrics.Gauge.value (Metrics.gauge (Engine.metrics engine) name)

let test_erpc_roundtrip_and_latency () =
  let engine, kernel, rt, client, server = make_world () in
  Netrpc.reset_remote_calls rt;
  let b = Erpc.import_remote rt ~client ~server iface ~impls in
  let got = ref 0 and elapsed = ref 0 in
  ignore
    (Kernel.spawn kernel client (fun () ->
         let t0 = Engine.now engine in
         (match Api.call rt b ~proc:"echo" [ V.int 55 ] with
         | [ V.Int x ] -> got := x
         | _ -> ());
         elapsed := Time.sub (Engine.now engine) t0));
  Engine.run engine;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine);
  Alcotest.(check int) "result" 55 !got;
  Alcotest.(check int) "counted" 1 (Netrpc.remote_calls rt);
  (* The whole point: the packet transport loses the classic path's
     2.66 ms protocol constant. *)
  Alcotest.(check bool) "far below the classic Null wire" true
    (!elapsed < Time.us 600 && !elapsed > Time.us 50);
  Alcotest.(check bool) "request + response packets" true
    (ctr engine "net.erpc.pkts_sent" >= 2);
  Alcotest.(check int) "credit accounting balanced" 0
    (ctr engine "net.erpc.credit_underflow")

let test_erpc_multipacket_fragmentation () =
  let engine, kernel, rt, client, server = make_world () in
  let b = Erpc.import_remote rt ~client ~server iface ~impls in
  let payload = Bytes.create 4096 in
  let ok = ref false in
  ignore
    (Kernel.spawn kernel client (fun () ->
         match Api.call rt b ~proc:"blob" [ V.bytes payload ] with
         | [ V.Bytes b ] -> ok := Bytes.length b = 4096
         | _ -> ()));
  Engine.run engine;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine);
  Alcotest.(check bool) "payload echoed" true !ok;
  (* 4096 B over a 1436 B fragment payload = 3 fragments each way. *)
  Alcotest.(check int) "six fragments" 6 (ctr engine "net.erpc.pkts_sent");
  Alcotest.(check bool) "zero-copy counted both directions" true
    (ctr engine "net.erpc.zerocopy_bytes" = 8192)

let test_erpc_binding_cache_ablation () =
  let run ~binding_cache =
    let engine, kernel, rt, client, server = make_world () in
    let params = { Erpc.default_params with Erpc.binding_cache } in
    let b = Erpc.import_remote ~params rt ~client ~server iface ~impls in
    let elapsed = ref 0 in
    ignore
      (Kernel.spawn kernel client (fun () ->
           let t0 = Engine.now engine in
           for i = 1 to 10 do
             ignore (Api.call rt b ~proc:"echo" [ V.int i ])
           done;
           elapsed := Time.sub (Engine.now engine) t0));
    Engine.run engine;
    Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine);
    (!elapsed, ctr engine "net.erpc.bcache_hits")
  in
  let base, hits0 = run ~binding_cache:false in
  let cached, hits1 = run ~binding_cache:true in
  Alcotest.(check int) "no hits without the cache" 0 hits0;
  Alcotest.(check int) "nine hits after the first miss" 9 hits1;
  (* 9 calls save (20 - 1) us of kernel mediation each. *)
  Alcotest.(check bool) "cache is faster" true (cached < base)

(* qcheck: under any seeded drop/dup/delay plan, per-session credit
   accounting never goes negative and in-flight packets stay within the
   hard window cap. [net.erpc.credit_underflow] is incremented by the
   transport itself whenever the invariant would break. *)
let erpc_credit_invariant (seed, drop, dup, delay, calls) =
  let engine, kernel, rt, client, server = make_world () in
  let plan =
    Fault_plan.make
      {
        Fault_plan.none with
        Fault_plan.seed = Int64.of_int seed;
        pkt_drop = drop;
        pkt_dup = dup;
        pkt_delay = delay;
        pkt_delay_mean_us = 300.0;
      }
  in
  Fault_plan.install plan rt;
  let params = { Erpc.default_params with Erpc.init_cwnd = 4.0 } in
  let b = Erpc.import_remote ~params ~window:4 rt ~client ~server iface ~impls in
  let completed = ref 0 and failed = ref 0 in
  for c = 0 to 3 do
    ignore
      (Kernel.spawn kernel client
         ~name:(Printf.sprintf "erpc-prop-%d" c)
         (fun () ->
           for i = 1 to calls do
             match Api.call_result rt b ~proc:"echo" [ V.int i ] with
             | Ok [ V.Int v ] when v = i -> incr completed
             | Ok _ -> ()
             | Error _ -> incr failed
           done))
  done;
  Engine.run engine;
  Engine.failures engine = []
  && ctr engine "net.erpc.credit_underflow" = 0
  && !completed + !failed = 4 * calls
  && int_of_float (gauge engine "net.erpc.inflight_max")
     <= Erpc.default_params.Erpc.window

let test_erpc_credit_qcheck () =
  let gen =
    QCheck.Gen.(
      tup5 (int_bound 10_000)
        (float_bound_inclusive 0.3)
        (float_bound_inclusive 0.3)
        (float_bound_inclusive 0.3)
        (int_range 1 4))
  in
  let arb = QCheck.make gen in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:12 ~name:"credit accounting invariant" arb
       erpc_credit_invariant)

(* Packet-granularity dedup-cache eviction: many concurrent lossy calls
   hold their at-most-once entries across selective retransmissions,
   yet live entries never exceed the configured capacity — and every
   procedure still executes exactly once per call. *)
let test_erpc_dedup_eviction () =
  let engine, kernel, rt, client, server = make_world () in
  let plan =
    Fault_plan.make
      {
        Fault_plan.none with
        Fault_plan.seed = 11L;
        pkt_drop = 0.25;
        pkt_dup = 0.15;
      }
  in
  Fault_plan.install plan rt;
  let executed = ref 0 in
  let counted_impls =
    [
      ( "echo",
        fun args ->
          incr executed;
          match args with [ V.Int x ] -> [ V.int x ] | _ -> assert false );
    ]
  in
  let b =
    Erpc.import_remote ~dedup_capacity:3 ~window:8 rt ~client ~server iface
      ~impls:counted_impls
  in
  let calls_per_client = 6 and clients = 4 in
  let completed = ref 0 in
  for c = 0 to clients - 1 do
    ignore
      (Kernel.spawn kernel client
         ~name:(Printf.sprintf "erpc-lossy-%d" c)
         (fun () ->
           for i = 1 to calls_per_client do
             match Api.call_result rt b ~proc:"echo" [ V.int i ] with
             | Ok [ V.Int v ] when v = i -> incr completed
             | Ok _ -> Alcotest.fail "wrong result"
             | Error _ -> ()
           done))
  done;
  Engine.run engine;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures engine);
  Alcotest.(check bool) "losses actually retransmitted" true
    (ctr engine "net.erpc.retransmits" > 0);
  Alcotest.(check int) "one execution per completed-or-failed call"
    (clients * calls_per_client)
    !executed;
  let peak = int_of_float (gauge engine "net.erpc.dedup_peak") in
  Alcotest.(check bool) "cache was exercised" true (peak >= 1);
  Alcotest.(check bool) "live entries bounded by capacity" true (peak <= 3);
  Alcotest.(check int) "credit accounting balanced" 0
    (ctr engine "net.erpc.credit_underflow")

let () =
  Alcotest.run "lrpc_net"
    [
      ( "wire model",
        [
          Alcotest.test_case "null time" `Quick test_wire_time_null;
          Alcotest.test_case "per byte" `Quick test_wire_time_grows_with_bytes;
          Alcotest.test_case "multipacket" `Quick test_wire_time_multipacket_penalty;
        ] );
      ( "remote calls",
        [
          Alcotest.test_case "roundtrip" `Quick test_remote_call_roundtrip;
          Alcotest.test_case "slow" `Quick test_remote_call_slow;
          Alcotest.test_case "local rejected" `Quick test_local_pair_rejected;
          Alcotest.test_case "conformance" `Quick test_remote_conformance_checked;
          Alcotest.test_case "remote bit" `Quick test_remote_binding_has_remote_bit;
        ] );
      ( "erpc transport",
        [
          Alcotest.test_case "roundtrip + latency" `Quick
            test_erpc_roundtrip_and_latency;
          Alcotest.test_case "fragmentation" `Quick
            test_erpc_multipacket_fragmentation;
          Alcotest.test_case "binding cache" `Quick
            test_erpc_binding_cache_ablation;
          Alcotest.test_case "credit invariant (qcheck)" `Quick
            test_erpc_credit_qcheck;
          Alcotest.test_case "dedup eviction" `Quick test_erpc_dedup_eviction;
        ] );
    ]
