(* The observability subsystem: generic ring, metrics registry, typed
   trace, Chrome export, and the migrated counters' ground truth. *)

module Ring = Lrpc_obs.Ring
module Event = Lrpc_obs.Event
module Metrics = Lrpc_obs.Metrics
module Chrome_trace = Lrpc_obs.Chrome_trace
module Engine = Lrpc_sim.Engine
module Time = Lrpc_sim.Time
module Trace = Lrpc_sim.Trace
module Category = Lrpc_sim.Category
module Kernel = Lrpc_kernel.Kernel
module Api = Lrpc_core.Api
module Rt = Lrpc_core.Rt
module Driver = Lrpc_workload.Driver

(* --- Ring ----------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 8 do
    Ring.push r i
  done;
  Alcotest.(check int) "total" 8 (Ring.total r);
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "dropped" 5 (Ring.dropped r);
  Alcotest.(check (list int)) "newest kept, oldest first" [ 6; 7; 8 ]
    (Ring.to_list r)

let test_ring_partial () =
  let r = Ring.create ~capacity:8 in
  Ring.push r "a";
  Ring.push r "b";
  Alcotest.(check int) "dropped none" 0 (Ring.dropped r);
  Alcotest.(check (list string)) "only populated slots" [ "a"; "b" ]
    (Ring.to_list r);
  let visited = ref 0 in
  Ring.iter r (fun _ -> incr visited);
  Alcotest.(check int) "iter visits populated only" 2 !visited;
  Ring.clear r;
  Alcotest.(check (list string)) "cleared" [] (Ring.to_list r)

(* --- Metrics registry ----------------------------------------------------- *)

let test_metrics_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("who", "x") ] "test.count" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "counter value" 5 (Metrics.Counter.value c);
  (* find-or-register: same name and labels yields the same instrument *)
  let c' = Metrics.counter m ~labels:[ ("who", "x") ] "test.count" in
  Metrics.Counter.incr c';
  Alcotest.(check int) "aliased" 6 (Metrics.Counter.value c);
  let g = Metrics.gauge m "test.gauge" in
  Metrics.Gauge.set g 2.5;
  let h = Metrics.histogram m "test.hist" in
  Metrics.Histo.observe h 10;
  Metrics.Histo.observe h 90;
  Alcotest.(check int) "histo count" 2 (Metrics.Histo.count h);
  let s = Metrics.snapshot m in
  Alcotest.(check (option int)) "snapshot counter" (Some 6)
    (Metrics.get_counter s "test.count{who=x}");
  Alcotest.(check bool) "renders" true (String.length (Metrics.render s) > 0)

let test_metrics_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "test.k");
  match Metrics.gauge m "test.k" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "same key registered as two instrument kinds"

let test_metrics_empty_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "test.empty" in
  (* No samples: every percentile is defined as 0, not an exception. *)
  Alcotest.(check int) "p50 of empty" 0 (Metrics.Histo.percentile h 50.0);
  Alcotest.(check int) "p99 of empty" 0 (Metrics.Histo.percentile h 99.0);
  let full = Metrics.histogram m "test.full" in
  Metrics.Histo.observe full 7;
  let s = Metrics.snapshot m in
  (match Metrics.get_histogram s "test.empty" with
  | Some hs ->
      Alcotest.(check int) "snapshot count" 0 hs.Metrics.hs_count;
      Alcotest.(check int) "snapshot p50" 0 hs.Metrics.hs_p50
  | None -> Alcotest.fail "empty histogram still appears in the snapshot");
  (* ... but the JSON rendering omits it: its quantiles would be the
     meaningless empty-histogram 0s, not data. *)
  let json = Metrics.to_json s in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "non-empty histogram serialized" true
    (contains "\"test.full\"");
  Alcotest.(check bool) "empty histogram omitted from JSON" false
    (contains "\"test.empty\"")

(* --- A fixed serial workload --------------------------------------------- *)

let run_calls ?(tracer = false) n =
  let w = Driver.make_lrpc () in
  let tr = if tracer then Some (Trace.create ()) else None in
  Engine.set_tracer w.Driver.lw_engine tr;
  let b = Api.import w.Driver.lw_rt ~domain:w.Driver.lw_client ~interface:"Bench" in
  ignore
    (Kernel.spawn w.Driver.lw_kernel w.Driver.lw_client ~name:"client"
       (fun () ->
         for _ = 1 to n do
           ignore (Api.call w.Driver.lw_rt b ~proc:"null" [])
         done));
  Engine.run w.Driver.lw_engine;
  (w, b, tr)

let test_per_binding_histograms () =
  let w, b, _ = run_calls 25 in
  let st = b.Rt.b_stats in
  Alcotest.(check int) "per-binding calls" 25
    (Metrics.Counter.value st.Rt.cs_calls);
  Alcotest.(check int) "total latencies recorded" 25
    (Metrics.Histo.count st.Rt.cs_total);
  List.iter
    (fun (what, h) ->
      Alcotest.(check int) (what ^ " latencies recorded") 25
        (Metrics.Histo.count h))
    [
      ("bind", st.Rt.cs_bind);
      ("marshal", st.Rt.cs_marshal);
      ("transfer", st.Rt.cs_transfer);
      ("server", st.Rt.cs_server);
      ("return", st.Rt.cs_return);
    ];
  (* a serial Null call takes ~207us end to end *)
  let p50 = Metrics.Histo.percentile st.Rt.cs_total 50.0 in
  Alcotest.(check bool) "total p50 plausible" true (p50 >= 150 && p50 <= 260);
  ignore w

let test_migrated_counters_ground_truth () =
  let w, _, _ = run_calls 10 in
  let e = w.Driver.lw_engine in
  Alcotest.(check int) "calls_completed" 10 (Api.calls_completed w.Driver.lw_rt);
  (* single processor, serial workload: the category breakdown in the
     registry must account for every simulated nanosecond *)
  let total =
    List.fold_left (fun acc (_, t) -> acc + t) 0 (Engine.breakdown e)
  in
  Alcotest.(check int) "breakdown sums to now" (Engine.now e) total;
  let s = Metrics.snapshot (Engine.metrics e) in
  (* the breakdown and the registry are the same store *)
  let trap_registry =
    Option.value ~default:(-1)
      (Metrics.get_counter s "sim.time_ns{category=trap}")
  in
  let trap_breakdown =
    Option.value ~default:(-2)
      (List.assoc_opt Category.Trap (Engine.breakdown e))
  in
  Alcotest.(check int) "registry is the breakdown's home" trap_breakdown
    trap_registry

(* --- Chrome trace export -------------------------------------------------- *)

(* A minimal JSON syntax checker: accepts exactly the grammar of
   RFC 8259 minus numbers' full generality (enough for trace output). *)
let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail ()
  and literal lit =
    String.iter (fun c -> expect c) lit
  and number () =
    let ok = function '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true | _ -> false in
    let rec go () =
      match peek () with Some c when ok c -> advance (); go () | _ -> ()
    in
    go ()
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with Some _ -> advance () | None -> fail ());
          go ()
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems ()
        | Some ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | ok -> ok
  | exception Exit -> false

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

let test_chrome_json () =
  let _, _, tr = run_calls ~tracer:true 3 in
  let tr = Option.get tr in
  let json = Chrome_trace.to_json tr in
  Alcotest.(check bool) "well-formed JSON" true (json_well_formed json);
  Alcotest.(check bool) "has traceEvents" true
    (contains ~affix:"\"traceEvents\"" json);
  Alcotest.(check bool) "records drops" true
    (contains ~affix:"\"droppedEvents\"" json);
  (* timestamps are monotone in emission order *)
  let last = ref Time.zero in
  let monotone = ref true in
  Trace.iter tr (fun ev ->
      if Time.compare ev.Trace.at !last < 0 then monotone := false;
      last := ev.Trace.at);
  Alcotest.(check bool) "monotone timestamps" true !monotone

let test_trace_find_and_dropped () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.emit tr ~at:i ~tid:i ~cpu:0 (Event.Mark { name = "m"; detail = "" })
  done;
  Alcotest.(check int) "count is total" 6 (Trace.count tr);
  Alcotest.(check int) "dropped" 2 (Trace.dropped tr);
  Alcotest.(check int) "find sees only retained" 4
    (List.length (Trace.find tr ~kind:"m"));
  Alcotest.(check (list int)) "newest retained" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.Trace.tid) (Trace.events tr))

let () =
  Alcotest.run "lrpc_obs"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps newest" `Quick
            test_ring_wraparound;
          Alcotest.test_case "partial fill" `Quick test_ring_partial;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "roundtrip and aliasing" `Quick
            test_metrics_roundtrip;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_metrics_kind_mismatch;
          Alcotest.test_case "empty histogram" `Quick
            test_metrics_empty_histogram;
        ] );
      ( "call path",
        [
          Alcotest.test_case "per-binding histograms" `Quick
            test_per_binding_histograms;
          Alcotest.test_case "migrated counters ground truth" `Quick
            test_migrated_counters_ground_truth;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome json" `Quick test_chrome_json;
          Alcotest.test_case "find and dropped" `Quick
            test_trace_find_and_dropped;
        ] );
    ]
