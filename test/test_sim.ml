open Lrpc_sim

let cm = Cost_model.cvax_firefly
let cm_no_bus = { cm with Cost_model.bus_alpha = 0.0 }

let check_time = Alcotest.(check int)

(* --- Time -------------------------------------------------------------- *)

let test_time_units () =
  check_time "us" 1_000 (Time.us 1);
  check_time "ms" 1_000_000 (Time.ms 1);
  check_time "us_f rounds" 900 (Time.us_f 0.9);
  check_time "us_f rounds up" 1_667 (Time.us_f 1.667);
  Alcotest.(check (float 1e-9)) "to_us" 0.9 (Time.to_us (Time.ns 900));
  check_time "scale" 150 (Time.scale 100 1.5)

(* --- Heap -------------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h ~time:30 "c";
  Heap.push h ~time:10 "a";
  Heap.push h ~time:20 "b";
  let pops = List.init 3 (fun _ -> Heap.pop h) in
  Alcotest.(check (list (option (pair int string))))
    "sorted"
    [ Some (10, "a"); Some (20, "b"); Some (30, "c") ]
    pops;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~time:5 "first";
  Heap.push h ~time:5 "second";
  Heap.push h ~time:5 "third";
  let order =
    List.init 3 (fun _ -> match Heap.pop h with Some (_, x) -> x | None -> "?")
  in
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] order

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:t ()) times;
      let prev = ref min_int and ok = ref true in
      let rec drain () =
        match Heap.pop h with
        | Some (t, ()) ->
            if t < !prev then ok := false;
            prev := t;
            drain ()
        | None -> ()
      in
      drain ();
      !ok)

let test_heap_take_top_time () =
  let h = Heap.create () in
  Heap.push h ~time:7 "b";
  Heap.push h ~time:3 "a";
  check_time "top_time" 3 (Heap.top_time h);
  Alcotest.(check string) "take min" "a" (Heap.take h);
  check_time "top after take" 7 (Heap.top_time h);
  Alcotest.(check string) "take next" "b" (Heap.take h);
  Alcotest.check_raises "take on empty"
    (Invalid_argument "Heap.take: empty heap") (fun () ->
      ignore (Heap.take h))

(* Random push/pop interleavings against a sorted-list reference model:
   pops must come back in nondecreasing time order with FIFO on equal
   timestamps, exactly as a stable insertion sort would produce. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches sorted-list reference model" ~count:300
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      let pop_and_check () =
        match (Heap.pop h, !model) with
        | None, [] -> ()
        | Some (t, i), (t', i') :: rest when t = t' && i = i' -> model := rest
        | _ -> ok := false
      in
      List.iter
        (function
          | Some time ->
              let id = !next_id in
              incr next_id;
              Heap.push h ~time id;
              (* Stable insert: after every entry with time <= this one. *)
              let rec ins = function
                | (t', i') :: rest when t' <= time -> (t', i') :: ins rest
                | rest -> (time, id) :: rest
              in
              model := ins !model
          | None -> pop_and_check ())
        ops;
      while not (Heap.is_empty h) || !model <> [] do
        pop_and_check ();
        if not !ok then model := [] (* break out of a wedged run *)
      done;
      !ok)

(* Regression for the space leak where [pop] left the vacated slot
   holding its payload: a popped payload must be collectable once the
   caller drops it. A couple of slots are allowed to survive in
   registers/stack of this frame; before the fix, all of them did. *)
let test_heap_pop_releases_payloads () =
  let h = Heap.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let payload = Bytes.make 64 'x' in
    Weak.set w i (Some payload);
    Heap.push h ~time:i payload
  done;
  for _ = 0 to 7 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to 7 do
    if Weak.check w i then incr live
  done;
  Alcotest.(check bool)
    (Printf.sprintf "popped payloads collectable (%d still live)" !live)
    true (!live <= 2)

let test_heap_clear_releases_payloads () =
  let h = Heap.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let payload = Bytes.make 64 'y' in
    Weak.set w i (Some payload);
    Heap.push h ~time:i payload
  done;
  Heap.clear h;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to 7 do
    if Weak.check w i then incr live
  done;
  Alcotest.(check bool)
    (Printf.sprintf "cleared payloads collectable (%d still live)" !live)
    true (!live <= 2)

(* --- Cost model -------------------------------------------------------- *)

let test_null_minimum_cvax () =
  (* Paper Table 2/5: the theoretical minimum on the C-VAX is 109 us. *)
  check_time "109us" (Time.us 109) (Cost_model.null_minimum cm)

let test_null_minimum_others () =
  check_time "68020 170us" (Time.us 170) (Cost_model.null_minimum Cost_model.m68020);
  check_time "PERQ 444us" (Time.us 444) (Cost_model.null_minimum Cost_model.perq_accent)

let test_tlb_miss_split () =
  Alcotest.(check int) "43 misses" 43 Cost_model.null_tlb_misses;
  Alcotest.(check int) "25+18" Cost_model.null_tlb_misses
    (Cost_model.call_side_tlb_misses + Cost_model.return_side_tlb_misses)

(* --- TLB --------------------------------------------------------------- *)

let test_tlb_miss_then_hit () =
  let tlb = Tlb.create ~capacity:8 ~tagged:false in
  Alcotest.(check int) "cold misses" 3 (Tlb.access tlb ~domain:1 ~pages:[ 1; 2; 3 ]);
  Alcotest.(check int) "warm hits" 0 (Tlb.access tlb ~domain:1 ~pages:[ 1; 2; 3 ])

let test_tlb_invalidate () =
  let tlb = Tlb.create ~capacity:8 ~tagged:false in
  ignore (Tlb.access tlb ~domain:1 ~pages:[ 1; 2 ]);
  Tlb.invalidate tlb;
  Alcotest.(check int) "cold again" 2 (Tlb.access tlb ~domain:1 ~pages:[ 1; 2 ]);
  Alcotest.(check int) "one flush" 1 (Tlb.flush_count tlb)

let test_tlb_tagged_survives () =
  let tlb = Tlb.create ~capacity:8 ~tagged:true in
  ignore (Tlb.access tlb ~domain:1 ~pages:[ 1; 2 ]);
  Tlb.invalidate tlb;
  Alcotest.(check int) "still resident" 0 (Tlb.access tlb ~domain:1 ~pages:[ 1; 2 ]);
  (* Same page in another domain is a distinct tagged entry. *)
  Alcotest.(check int) "other domain misses" 2 (Tlb.access tlb ~domain:2 ~pages:[ 1; 2 ])

let test_tlb_untagged_shares_pages () =
  let tlb = Tlb.create ~capacity:8 ~tagged:false in
  ignore (Tlb.access tlb ~domain:1 ~pages:[ 7 ]);
  Alcotest.(check int) "untagged ignores domain" 0 (Tlb.access tlb ~domain:2 ~pages:[ 7 ])

let test_tlb_lru_eviction () =
  let tlb = Tlb.create ~capacity:2 ~tagged:false in
  ignore (Tlb.access tlb ~domain:0 ~pages:[ 1; 2 ]);
  ignore (Tlb.access tlb ~domain:0 ~pages:[ 1 ]);
  (* 2 is now LRU *)
  ignore (Tlb.access tlb ~domain:0 ~pages:[ 3 ]);
  Alcotest.(check bool) "1 stays" true (Tlb.resident tlb ~domain:0 ~page:1);
  Alcotest.(check bool) "2 evicted" false (Tlb.resident tlb ~domain:0 ~page:2)

(* --- Engine basics ------------------------------------------------------ *)

let test_delay_advances_time () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let finished = ref (-1) in
  ignore
    (Engine.spawn e ~domain:0 (fun () ->
         Engine.delay e (Time.us 5);
         Engine.delay e (Time.us 7);
         finished := Engine.now e));
  Engine.run e;
  check_time "12us" (Time.us 12) !finished;
  Alcotest.(check (list pass)) "no failures" [] (Engine.failures e)

let test_two_threads_one_cpu_serialize () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let log = ref [] in
  let worker name =
    ignore
      (Engine.spawn e ~domain:0 ~name (fun () ->
           Engine.delay e (Time.us 10);
           log := (name, Engine.now e) :: !log;
           Engine.yield e;
           Engine.delay e (Time.us 10);
           log := (name, Engine.now e) :: !log))
  in
  worker "a";
  worker "b";
  Engine.run e;
  (* Thread b only starts after a yields; one CPU means full serialization
     of delays. The final event is at 40us. *)
  match !log with
  | (_, last) :: _ -> check_time "total serialized" (Time.us 40) last
  | [] -> Alcotest.fail "no events"

let test_two_cpus_parallel () =
  let e = Engine.create ~processors:2 cm_no_bus in
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    ignore
      (Engine.spawn e ~domain:i (fun () ->
           Engine.delay e (Time.us 100);
           done_at.(i) <- Engine.now e))
  done;
  Engine.run e;
  check_time "cpu0 parallel" (Time.us 100) done_at.(0);
  check_time "cpu1 parallel" (Time.us 100) done_at.(1)

let test_block_wake () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let waiter_done = ref 0 in
  let waiter =
    Engine.spawn e ~domain:0 ~name:"waiter" (fun () ->
        Engine.block e;
        waiter_done := Engine.now e)
  in
  ignore
    (Engine.spawn e ~domain:0 ~name:"waker" (fun () ->
         Engine.delay e (Time.us 50);
         Engine.wake e waiter));
  Engine.run e;
  check_time "woken at 50" (Time.us 50) !waiter_done

let test_spawn_failure_recorded () =
  let e = Engine.create ~processors:1 cm_no_bus in
  ignore (Engine.spawn e ~domain:0 (fun () -> failwith "boom"));
  Engine.run e;
  match Engine.failures e with
  | [ (_, Failure msg) ] -> Alcotest.(check string) "msg" "boom" msg
  | _ -> Alcotest.fail "expected one failure"

let test_kill_blocked_thread () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let saw_exn = ref false in
  let victim =
    Engine.spawn e ~domain:0 (fun () ->
        (try Engine.block e
         with Engine.Thread_killed as ex ->
           saw_exn := true;
           raise ex);
        ())
  in
  ignore
    (Engine.spawn e ~domain:0 (fun () ->
         Engine.delay e (Time.us 1);
         Engine.kill e victim));
  Engine.run e;
  Alcotest.(check bool) "exn delivered" true !saw_exn;
  Alcotest.(check bool) "victim dead" false (Engine.alive victim);
  Alcotest.(check (list pass)) "kill is not a failure" [] (Engine.failures e)

let test_interrupt_with_custom_exn () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let caught = ref "" in
  let victim =
    Engine.spawn e ~domain:0 (fun () ->
        try Engine.block e with Failure m -> caught := m)
  in
  ignore
    (Engine.spawn e ~domain:0 (fun () ->
         Engine.delay e (Time.us 2);
         Engine.interrupt e victim (Failure "call-failed")));
  Engine.run e;
  Alcotest.(check string) "caught" "call-failed" !caught

let test_context_switch_charged_on_dispatch () =
  let e = Engine.create ~processors:1 cm_no_bus in
  (* First placements are free (processes pre-exist the measurement), but
     re-dispatching a woken thread onto a processor whose loaded context
     differs charges one VM reload. *)
  let a =
    Engine.spawn e ~domain:3 (fun () ->
        Engine.block e;
        Engine.delay e (Time.us 1))
  in
  ignore
    (Engine.spawn e ~domain:5 (fun () ->
         Engine.delay e (Time.us 10);
         Engine.wake e a));
  Engine.run e;
  let ctx =
    List.assoc_opt Category.Context_switch (Engine.breakdown e)
    |> Option.value ~default:0
  in
  check_time "one vm reload" cm.Cost_model.vm_reload ctx;
  let cpu0 = (Engine.cpus e).(0) in
  Alcotest.(check (option int)) "context loaded" (Some 3) cpu0.Engine.context

let test_switch_self_context () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let th = ref None in
  ignore
    (Engine.spawn e ~domain:1 (fun () ->
         th := Some (Engine.self e);
         Engine.switch_self_context e ~domain:2;
         Alcotest.(check int) "domain updated" 2
           (Engine.thread_domain (Engine.self e))));
  Engine.run e;
  let ctx =
    List.assoc_opt Category.Context_switch (Engine.breakdown e)
    |> Option.value ~default:0
  in
  (* Initial dispatch is free; only the explicit crossing is charged. *)
  check_time "one vm reload" cm.Cost_model.vm_reload ctx

let test_touch_pages_charges_misses () =
  let e = Engine.create ~processors:1 cm_no_bus in
  ignore
    (Engine.spawn e ~domain:0 (fun () ->
         Engine.touch_pages e ~pages:[ 100; 101; 102 ];
         (* warm now *)
         Engine.touch_pages e ~pages:[ 100; 101; 102 ]));
  Engine.run e;
  let tlb =
    List.assoc_opt Category.Tlb_miss (Engine.breakdown e)
    |> Option.value ~default:0
  in
  check_time "3 misses once" (3 * cm.Cost_model.tlb_miss) tlb;
  Alcotest.(check int) "counter" 3 (Engine.total_tlb_misses e)

let test_handoff_direct_transfer () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let order = ref [] in
  let server =
    Engine.spawn e ~domain:1 ~name:"server" (fun () ->
        Engine.block e;
        order := "server" :: !order;
        Engine.delay e (Time.us 5))
  in
  ignore
    (Engine.spawn e ~domain:0 ~name:"client" (fun () ->
         Engine.delay e (Time.us 1);
         order := "client" :: !order;
         Engine.handoff e ~to_:server));
  Engine.run e;
  Alcotest.(check (list string)) "handoff order" [ "server"; "client" ] !order;
  Alcotest.(check int) "client still blocked" 1
    (List.length (Engine.stuck_threads e))

let test_exchange_processors () =
  let e = Engine.create ~processors:2 cm_no_bus in
  let landed = ref (-1) in
  ignore
    (Engine.spawn e ~domain:0 ~home:0 (fun () ->
         Engine.delay e (Time.us 1);
         let cpus = Engine.cpus e in
         (* cpu1 idles; pretend it holds the server context (domain 9). *)
         cpus.(1).Engine.context <- Some 9;
         Engine.exchange_processors e ~target:cpus.(1);
         Engine.switch_self_context e ~domain:9;
         landed := (Engine.current_cpu e).Engine.idx));
  Engine.run e;
  Alcotest.(check int) "on cpu1" 1 !landed;
  let exch =
    List.assoc_opt Category.Exchange (Engine.breakdown e)
    |> Option.value ~default:0
  in
  check_time "exchange charged" cm.Cost_model.processor_exchange exch;
  (* Crucially, no context switch was charged at all: the whole point of
     domain caching. *)
  let ctx =
    List.assoc_opt Category.Context_switch (Engine.breakdown e)
    |> Option.value ~default:0
  in
  check_time "no reload" Time.zero ctx

let test_bus_contention_dilates () =
  let e = Engine.create ~processors:2 { cm with Cost_model.bus_alpha = 0.5 } in
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    ignore
      (Engine.spawn e ~domain:i ~home:i (fun () ->
           Engine.delay e (Time.us 100);
           done_at.(i) <- Engine.now e))
  done;
  Engine.run e;
  (* Both threads execute concurrently: factor 1.5. *)
  check_time "dilated" (Time.us 150) done_at.(0);
  check_time "dilated" (Time.us 150) done_at.(1)

let test_run_until_horizon () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let ticks = ref 0 in
  ignore
    (Engine.spawn e ~domain:0 (fun () ->
         while true do
           Engine.delay e (Time.us 10);
           incr ticks
         done));
  Engine.run ~until:(Time.us 95) e;
  Alcotest.(check int) "9 ticks" 9 !ticks

let test_ready_queue_overflow_threads () =
  let e = Engine.create ~processors:2 cm_no_bus in
  let completed = ref 0 in
  for i = 0 to 9 do
    ignore
      (Engine.spawn e ~domain:i (fun () ->
           Engine.delay e (Time.us 10);
           incr completed))
  done;
  Engine.run e;
  Alcotest.(check int) "all ran" 10 !completed;
  (* 10 threads x 10us over 2 cpus = 50us of makespan. *)
  check_time "makespan" (Time.us 50) (Engine.now e)

(* --- Spinlock ----------------------------------------------------------- *)

let test_spinlock_mutual_exclusion () =
  let e = Engine.create ~processors:2 cm_no_bus in
  let lk = Spinlock.create e in
  let in_cs = ref 0 and max_in_cs = ref 0 and total = ref 0 in
  for i = 0 to 1 do
    ignore
      (Engine.spawn e ~domain:i ~home:i (fun () ->
           for _ = 1 to 20 do
             Spinlock.acquire lk;
             incr in_cs;
             if !in_cs > !max_in_cs then max_in_cs := !in_cs;
             Engine.delay e (Time.us 3);
             decr in_cs;
             incr total;
             Spinlock.release lk;
             Engine.delay e (Time.us 1)
           done))
  done;
  Engine.run e;
  Alcotest.(check int) "never two holders" 1 !max_in_cs;
  Alcotest.(check int) "all sections ran" 40 !total

let test_spinlock_serializes_throughput () =
  (* Two CPUs, but a critical section of 10us per 10us of work: the lock
     fully serializes, so 2 CPUs take as long as 1 would. *)
  let run_with cpus =
    let e = Engine.create ~processors:cpus cm_no_bus in
    let lk = Spinlock.create e in
    let ops = ref 0 in
    for i = 0 to cpus - 1 do
      ignore
        (Engine.spawn e ~domain:i ~home:i (fun () ->
             while true do
               Spinlock.with_lock lk ~hold:(Time.us 10) (fun () -> incr ops)
             done))
    done;
    Engine.run ~until:(Time.ms 1) e;
    !ops
  in
  let one = run_with 1 and two = run_with 2 in
  Alcotest.(check bool) "no speedup from second cpu" true
    (abs (one - two) <= 2)

let test_spinlock_release_by_nonholder_rejected () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let lk = Spinlock.create ~name:"l" e in
  ignore (Engine.spawn e ~domain:0 (fun () -> Spinlock.release lk));
  Engine.run e;
  match Engine.failures e with
  | [ (_, Invalid_argument _) ] -> ()
  | _ -> Alcotest.fail "expected Invalid_argument failure"

let test_spinlock_fifo () =
  let e = Engine.create ~processors:3 cm_no_bus in
  let lk = Spinlock.create e in
  let order = ref [] in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e ~domain:i ~home:i (fun () ->
           (* Stagger arrival so the queue order is deterministic. *)
           Engine.delay e (Time.us i);
           Spinlock.acquire lk;
           order := i :: !order;
           Engine.delay e (Time.us 10);
           Spinlock.release lk))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo handover" [ 0; 1; 2 ] (List.rev !order)

(* --- Waitq --------------------------------------------------------------- *)

let test_waitq_signal_fifo () =
  let e = Engine.create ~processors:3 cm_no_bus in
  let q = Waitq.create e in
  let woken = ref [] in
  for i = 0 to 1 do
    ignore
      (Engine.spawn e ~domain:i ~home:i (fun () ->
           Engine.delay e (Time.us i);
           Waitq.wait q;
           woken := i :: !woken))
  done;
  ignore
    (Engine.spawn e ~domain:2 ~home:2 (fun () ->
         Engine.delay e (Time.us 10);
         ignore (Waitq.signal q);
         Engine.delay e (Time.us 10);
         ignore (Waitq.signal q)));
  Engine.run e;
  Alcotest.(check (list int)) "fifo wake order" [ 0; 1 ] (List.rev !woken)

let test_waitq_signal_empty () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let q = Waitq.create e in
  let result = ref true in
  ignore (Engine.spawn e ~domain:0 (fun () -> result := Waitq.signal q));
  Engine.run e;
  Alcotest.(check bool) "no waiter" false !result

let test_waitq_skips_dead_waiters () =
  let e = Engine.create ~processors:2 cm_no_bus in
  let q = Waitq.create e in
  let second_woken = ref false in
  let first =
    Engine.spawn e ~domain:0 ~home:0 (fun () ->
        Waitq.wait q;
        Alcotest.fail "dead waiter must not wake")
  in
  ignore
    (Engine.spawn e ~domain:1 ~home:1 (fun () ->
         Engine.delay e (Time.us 1);
         Waitq.wait q;
         second_woken := true));
  ignore
    (Engine.spawn e ~domain:1 ~home:1 (fun () ->
         Engine.delay e (Time.us 2);
         Engine.kill e first;
         Engine.delay e (Time.us 2);
         ignore (Waitq.signal q)));
  Engine.run e;
  Alcotest.(check bool) "live waiter got the signal" true !second_woken

let test_waitq_broadcast () =
  let e = Engine.create ~processors:4 cm_no_bus in
  let q = Waitq.create e in
  let woken = ref 0 in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e ~domain:i ~home:i (fun () ->
           Waitq.wait q;
           incr woken))
  done;
  ignore
    (Engine.spawn e ~domain:3 ~home:3 (fun () ->
         Engine.delay e (Time.us 1);
         Alcotest.(check int) "3 woken" 3 (Waitq.broadcast q)));
  Engine.run e;
  Alcotest.(check int) "all resumed" 3 !woken

(* --- Trace ----------------------------------------------------------------- *)

let test_trace_ring_bounded () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit tr ~at:i ~tid:i ~cpu:0
      (Lrpc_obs.Event.Mark { name = "k"; detail = "" })
  done;
  Alcotest.(check int) "total counts all" 10 (Trace.count tr);
  let evs = Trace.events tr in
  Alcotest.(check int) "ring keeps 4" 4 (List.length evs);
  Alcotest.(check (list int)) "most recent, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Trace.tid) evs);
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.count tr)

let test_engine_traces_lifecycle () =
  let e = Engine.create ~processors:2 cm_no_bus in
  let tr = Trace.create () in
  Engine.set_tracer e (Some tr);
  let server =
    Engine.spawn e ~domain:1 ~name:"srv" (fun () ->
        Engine.block e;
        Engine.delay e (Time.us 5))
  in
  ignore
    (Engine.spawn e ~domain:0 ~name:"cli" (fun () ->
         Engine.delay e (Time.us 1);
         Engine.switch_self_context e ~domain:2;
         Engine.wake e server));
  Engine.run e;
  let kinds k = List.length (Trace.find tr ~kind:k) in
  Alcotest.(check bool) "dispatches" true (kinds "dispatch" >= 3);
  Alcotest.(check int) "one block" 1 (kinds "block");
  Alcotest.(check int) "one wake" 1 (kinds "wake");
  Alcotest.(check int) "one explicit switch" 1 (kinds "switch");
  Alcotest.(check int) "two finishes" 2 (kinds "finish");
  Alcotest.(check bool) "dump renders" true (String.length (Trace.dump tr) > 50);
  (* detaching stops emission *)
  Engine.set_tracer e None;
  let before = Trace.count tr in
  ignore (Engine.spawn e ~domain:0 (fun () -> ()));
  Engine.run e;
  Alcotest.(check int) "detached" before (Trace.count tr)

let test_engine_yield_to () =
  let e = Engine.create ~processors:1 cm_no_bus in
  let order = ref [] in
  let consumer =
    Engine.spawn e ~domain:0 ~name:"consumer" (fun () ->
        Engine.block e;
        order := "consumer" :: !order)
  in
  ignore
    (Engine.spawn e ~domain:0 ~name:"producer" (fun () ->
         Engine.delay e (Time.us 1);
         order := "producer-before" :: !order;
         Engine.yield_to e ~to_:consumer;
         (* still runnable: resumes once the consumer releases the cpu *)
         order := "producer-after" :: !order));
  Engine.run e;
  Alcotest.(check (list string)) "yield_to order"
    [ "producer-before"; "consumer"; "producer-after" ]
    (List.rev !order)

(* --- Partitioned engine -------------------------------------------------- *)

let test_isolated_cost_model () =
  let iso = Cost_model.isolated ~name:"iso" cm in
  Alcotest.(check (float 0.0)) "bus off" 0.0 iso.Cost_model.bus_alpha;
  Alcotest.(check bool)
    "positive lookahead" true
    (Cost_model.lookahead iso > Time.zero);
  check_time "default lookahead = min cross-CPU latency"
    (Cost_model.min_cross_cpu_latency cm)
    (Cost_model.lookahead iso);
  check_time "explicit lookahead" (Time.us 7)
    (Cost_model.lookahead (Cost_model.isolated ~lookahead:(Time.us 7) ~name:"iso7" cm));
  Alcotest.check_raises "zero lookahead rejected"
    (Invalid_argument "Cost_model.isolated: lookahead must be positive")
    (fun () ->
      ignore (Cost_model.isolated ~lookahead:Time.zero ~name:"bad" cm))

let test_engine_create_domain_validation () =
  (match Engine.create ~processors:2 ~domains:0 cm with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains:0 accepted");
  (* A model claiming isolation while keeping the shared bus would let
     partitions read remote CPU state at zero latency. *)
  (match
     Engine.create ~processors:2 ~domains:2
       { cm with Cost_model.parallel_lookahead = Time.us 10 }
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "isolated model with live bus accepted");
  (* More domains than processors clamps rather than fails. *)
  let e = Engine.create ~processors:2 ~domains:8 cm in
  Alcotest.(check int) "clamped to processors" 2 (Engine.domains e)

(* One pinned thread per CPU; cross-CPU wakes along a ring. Everything a
   run produces — completion times, final clock, the full metrics
   snapshot and the trace stream — must be bit-identical whether the
   4 CPUs share one host domain or are sharded across 2 or 4. *)
let isolated_ring_run domains =
  let iso = Cost_model.isolated ~lookahead:(Time.us 5) ~name:"iso" cm in
  let e = Engine.create ~processors:4 ~domains iso in
  let tracer = Lrpc_obs.Trace.create ~capacity:(1 lsl 14) () in
  Engine.set_tracer e (Some tracer);
  let finished = Array.make 4 0 in
  let threads =
    Array.init 4 (fun c ->
        Engine.spawn e ~domain:c ~home:c ~name:(Printf.sprintf "ring%d" c)
          (fun () ->
            for _ = 1 to 3 do
              Engine.delay e (Time.us (1 + c));
              Engine.block e
            done;
            finished.(c) <- Engine.now e))
  in
  ignore
    (Engine.spawn e ~domain:9 ~home:0 ~name:"driver" (fun () ->
         for round = 1 to 3 do
           for c = 0 to 3 do
             Engine.delay e (Time.us 10);
             (* Cross-CPU wake: deferred by the lookahead, carried by a
                mailbox when CPU [c] lives in another partition. *)
             Engine.wake e threads.(c)
           done;
           ignore round
         done));
  Engine.run e;
  let snap = Lrpc_obs.Metrics.render (Lrpc_obs.Metrics.snapshot (Engine.metrics e)) in
  ( Array.to_list finished,
    Engine.now e,
    snap,
    Digest.to_hex (Digest.string (Lrpc_obs.Trace.dump tracer)) )

let test_isolated_domains_identical () =
  let base = isolated_ring_run 1 in
  List.iter
    (fun d ->
      let times, now, snap, trace = isolated_ring_run d in
      let b_times, b_now, b_snap, b_trace = base in
      Alcotest.(check (list int))
        (Printf.sprintf "completion times, %d domains" d)
        b_times times;
      check_time (Printf.sprintf "final clock, %d domains" d) b_now now;
      Alcotest.(check string)
        (Printf.sprintf "metrics, %d domains" d)
        b_snap snap;
      Alcotest.(check string)
        (Printf.sprintf "trace digest, %d domains" d)
        b_trace trace)
    [ 2; 4 ]

let test_isolated_wake_deferred () =
  (* The +lookahead wake rule is uniform across domain counts — it
     applies even in the serial run, or times would depend on D. *)
  let iso = Cost_model.isolated ~lookahead:(Time.us 5) ~name:"iso" cm in
  List.iter
    (fun domains ->
      let e = Engine.create ~processors:2 ~domains iso in
      let woken_at = ref 0 and same_cpu_at = ref 0 in
      let sleeper =
        Engine.spawn e ~domain:0 ~home:1 (fun () ->
            Engine.block e;
            woken_at := Engine.now e)
      in
      let local =
        Engine.spawn e ~domain:0 ~home:0 (fun () ->
            Engine.block e;
            same_cpu_at := Engine.now e)
      in
      ignore
        (Engine.spawn e ~domain:0 ~home:0 (fun () ->
             Engine.delay e (Time.us 50);
             Engine.wake e sleeper;
             Engine.wake e local));
      Engine.run e;
      check_time
        (Printf.sprintf "cross-CPU wake deferred (%d domains)" domains)
        (Time.us 55) !woken_at;
      check_time
        (Printf.sprintf "same-CPU wake immediate (%d domains)" domains)
        (Time.us 50) !same_cpu_at)
    [ 1; 2 ]

let test_isolated_rejects_zero_latency_coupling () =
  let iso = Cost_model.isolated ~name:"iso" cm in
  let e = Engine.create ~processors:2 ~domains:2 iso in
  let peer = Engine.spawn e ~domain:0 ~home:1 (fun () -> Engine.block e) in
  ignore
    (Engine.spawn e ~domain:0 ~home:0 (fun () ->
         Engine.delay e (Time.us 1);
         (* A direct processor handoff is a zero-latency cross-CPU
            interaction — exactly what an isolated model forswears. *)
         Engine.handoff e ~to_:peer));
  Engine.run e;
  (match
     List.find_opt
       (fun (_, exn) ->
         match exn with Engine.Cross_partition_interaction _ -> true | _ -> false)
       (Engine.failures e)
   with
  | Some _ -> ()
  | None -> Alcotest.fail "handoff under an isolated model did not raise");
  (* Placement is partition-local, so isolated spawns must be pinned. *)
  let e2 = Engine.create ~processors:2 ~domains:2 iso in
  match Engine.spawn e2 ~domain:0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unpinned spawn accepted under isolated model"

let test_window_helpers () =
  let mk entries =
    let h = Heap.create () in
    List.iter (fun (t, k) -> Heap.push_key h ~time:t ~key:k ()) entries;
    h
  in
  let empty = Heap.create () in
  Alcotest.(check int) "all empty" (-1) (Window.select [| empty; empty |]);
  let a = mk [ (10, 3) ] and b = mk [ (10, 2) ] and c = mk [ (5, 9) ] in
  Alcotest.(check int) "earliest time wins" 2 (Window.select [| a; b; c |]);
  ignore (Heap.take c);
  Alcotest.(check int) "key breaks time ties" 1 (Window.select [| a; b; c |]);
  Alcotest.(check (option int)) "min_time" (Some 10) (Window.min_time [| a; b |]);
  Alcotest.(check (option int)) "min_time empty" None (Window.min_time [| c |]);
  check_time "window spans lookahead" 15
    (Window.window_end ~start:10 ~lookahead:5 ~limit:max_int);
  check_time "window capped by limit" 13
    (Window.window_end ~start:10 ~lookahead:5 ~limit:12);
  check_time "zero lookahead still advances" 11
    (Window.window_end ~start:10 ~lookahead:0 ~limit:max_int)

(* --- Counter hygiene ------------------------------------------------------ *)

(* Steal / TLB counters belong to one engine instance: zero at birth,
   with or without a topology, so no run can inherit another world's
   totals (each Driver.boot builds a fresh engine). *)
let test_fresh_engine_counters_zero () =
  let check_engine (e : Engine.t) =
    Alcotest.(check int) "total steals" 0 (Engine.total_steals e);
    Alcotest.(check int) "near steals" 0 (Engine.total_steals_near e);
    Alcotest.(check int) "far steals" 0 (Engine.total_steals_far e);
    Alcotest.(check int) "tlb misses" 0 (Engine.total_tlb_misses e);
    Array.iter
      (fun c ->
        Alcotest.(check int) "cpu steals" 0 c.Engine.steals;
        Alcotest.(check int) "cpu tagged" 0 c.Engine.steals_tagged;
        Alcotest.(check int) "cpu near" 0 c.Engine.steals_near;
        Alcotest.(check int) "cpu far" 0 c.Engine.steals_far;
        check_time "cpu spin" 0 c.Engine.lock_spin)
      (Engine.cpus e)
  in
  check_engine (Engine.create ~processors:4 cm);
  check_engine
    (Engine.create ~processors:8
       (Cost_model.clustered ~cluster_size:4 ~name:"clu4" cm))

(* --- Victim-ring property ------------------------------------------------- *)

(* Every thief's scan order is a permutation of the other CPUs — no
   queue unreachable, none visited twice — and distance-ordered: all
   same-cluster victims precede every cross-cluster one. *)
let prop_victim_ring_covers =
  QCheck.Test.make ~name:"victim rings cover every other CPU exactly once"
    ~count:200
    QCheck.(pair (int_range 1 8) (int_range 1 48))
    (fun (cluster_size, cpus) ->
      let model = Cost_model.clustered ~cluster_size ~name:"clu" cm in
      let topo = Option.get model.Cost_model.topology in
      let ok = ref true in
      for cpu = 0 to cpus - 1 do
        let ring = Cost_model.victim_ring topo ~cpus ~cpu in
        if Array.length ring <> cpus - 1 then ok := false;
        let seen = Array.make cpus 0 in
        Array.iter (fun v -> seen.(v) <- seen.(v) + 1) ring;
        Array.iteri
          (fun i n -> if n <> if i = cpu then 0 else 1 then ok := false)
          seen;
        let my = Cost_model.cluster_of topo cpu in
        let crossed = ref false in
        Array.iter
          (fun v ->
            if Cost_model.cluster_of topo v <> my then crossed := true
            else if !crossed then ok := false)
          ring
      done;
      !ok)

(* --- Determinism property ------------------------------------------------ *)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"simulation runs are reproducible" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 1 20))
    (fun (cpus, nthreads) ->
      let trace () =
        let e = Engine.create ~processors:cpus cm in
        let log = Buffer.create 128 in
        for i = 0 to nthreads - 1 do
          ignore
            (Engine.spawn e ~domain:(i mod 3) (fun () ->
                 for _ = 1 to 5 do
                   Engine.delay e (Time.us ((i mod 7) + 1));
                   Buffer.add_string log (Printf.sprintf "%d@%d;" i (Engine.now e))
                 done))
        done;
        Engine.run e;
        Buffer.contents log
      in
      String.equal (trace ()) (trace ()))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_heap_sorted;
        prop_heap_model;
        prop_victim_ring_covers;
        prop_engine_deterministic;
      ]
  in
  Alcotest.run "lrpc_sim"
    [
      ("time", [ Alcotest.test_case "units" `Quick test_time_units ]);
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "take/top_time" `Quick test_heap_take_top_time;
          Alcotest.test_case "pop releases payloads" `Quick
            test_heap_pop_releases_payloads;
          Alcotest.test_case "clear releases payloads" `Quick
            test_heap_clear_releases_payloads;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "cvax null minimum" `Quick test_null_minimum_cvax;
          Alcotest.test_case "other minimums" `Quick test_null_minimum_others;
          Alcotest.test_case "tlb miss split" `Quick test_tlb_miss_split;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "miss then hit" `Quick test_tlb_miss_then_hit;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
          Alcotest.test_case "tagged survives" `Quick test_tlb_tagged_survives;
          Alcotest.test_case "untagged shares" `Quick test_tlb_untagged_shares_pages;
          Alcotest.test_case "lru eviction" `Quick test_tlb_lru_eviction;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay advances time" `Quick test_delay_advances_time;
          Alcotest.test_case "one cpu serializes" `Quick test_two_threads_one_cpu_serialize;
          Alcotest.test_case "two cpus parallel" `Quick test_two_cpus_parallel;
          Alcotest.test_case "block/wake" `Quick test_block_wake;
          Alcotest.test_case "failure recorded" `Quick test_spawn_failure_recorded;
          Alcotest.test_case "kill blocked" `Quick test_kill_blocked_thread;
          Alcotest.test_case "interrupt custom exn" `Quick test_interrupt_with_custom_exn;
          Alcotest.test_case "dispatch context switch" `Quick test_context_switch_charged_on_dispatch;
          Alcotest.test_case "switch self context" `Quick test_switch_self_context;
          Alcotest.test_case "touch pages" `Quick test_touch_pages_charges_misses;
          Alcotest.test_case "handoff" `Quick test_handoff_direct_transfer;
          Alcotest.test_case "exchange processors" `Quick test_exchange_processors;
          Alcotest.test_case "bus contention" `Quick test_bus_contention_dilates;
          Alcotest.test_case "run until" `Quick test_run_until_horizon;
          Alcotest.test_case "more threads than cpus" `Quick test_ready_queue_overflow_threads;
          Alcotest.test_case "fresh counters zero" `Quick
            test_fresh_engine_counters_zero;
        ] );
      ( "partitioned engine",
        [
          Alcotest.test_case "isolated cost model" `Quick test_isolated_cost_model;
          Alcotest.test_case "create validation" `Quick test_engine_create_domain_validation;
          Alcotest.test_case "domains 1/2/4 identical" `Quick test_isolated_domains_identical;
          Alcotest.test_case "cross-CPU wake deferred" `Quick test_isolated_wake_deferred;
          Alcotest.test_case "zero-latency coupling rejected" `Quick
            test_isolated_rejects_zero_latency_coupling;
          Alcotest.test_case "window helpers" `Quick test_window_helpers;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
          Alcotest.test_case "engine lifecycle" `Quick test_engine_traces_lifecycle;
          Alcotest.test_case "yield_to" `Quick test_engine_yield_to;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion;
          Alcotest.test_case "serializes" `Quick test_spinlock_serializes_throughput;
          Alcotest.test_case "non-holder release" `Quick test_spinlock_release_by_nonholder_rejected;
          Alcotest.test_case "fifo" `Quick test_spinlock_fifo;
        ] );
      ( "waitq",
        [
          Alcotest.test_case "signal fifo" `Quick test_waitq_signal_fifo;
          Alcotest.test_case "signal empty" `Quick test_waitq_signal_empty;
          Alcotest.test_case "skips dead" `Quick test_waitq_skips_dead_waiters;
          Alcotest.test_case "broadcast" `Quick test_waitq_broadcast;
        ] );
      ("properties", qsuite);
    ]
