open Lrpc_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Prng -------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  Alcotest.(check bool) "different streams" false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_split_independent () =
  let a = Prng.create ~seed:7L in
  let c = Prng.split a in
  let x = Prng.next_int64 a and y = Prng.next_int64 c in
  Alcotest.(check bool) "split diverges" true (x <> y)

let test_prng_copy () =
  let a = Prng.create ~seed:9L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_int_bounds () =
  let g = Prng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let g = Prng.create ~seed:4L in
  for _ = 1 to 10_000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_prng_bernoulli_mean () =
  let g = Prng.create ~seed:5L in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bernoulli g ~p:0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "roughly 0.3" true (Float.abs (mean -. 0.3) < 0.01)

let test_prng_exponential_mean () =
  let g = Prng.create ~seed:6L in
  let acc = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential g ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.0) < 0.2)

let test_prng_zipf_skew () =
  let g = Prng.create ~seed:8L in
  let table = Prng.zipf_table ~n:100 ~s:1.2 in
  let counts = Array.make 101 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Prng.zipf_from_table g table in
    Alcotest.(check bool) "rank in range" true (r >= 1 && r <= 100);
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 most popular" true
    (counts.(1) > counts.(2) && counts.(2) > counts.(10))

let test_prng_choose_weights () =
  let g = Prng.create ~seed:10L in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10_000 do
    match Prng.choose g ~weights:[ (9.0, `A); (1.0, `B) ] with
    | `A -> incr a
    | `B -> incr b
  done;
  Alcotest.(check bool) "ratio about 9:1" true (!a > !b * 5)

let test_prng_shuffle_permutation () =
  let g = Prng.create ~seed:11L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~bin_width:50 ~max_value:200 in
  List.iter (Histogram.add h) [ 0; 49; 50; 149; 199; 200; 1000 ];
  Alcotest.(check int) "count" 7 (Histogram.count h);
  Alcotest.(check int) "bin 0" 2 (Histogram.bin_value h 0);
  Alcotest.(check int) "bin 1" 1 (Histogram.bin_value h 1);
  Alcotest.(check int) "bin 2" 1 (Histogram.bin_value h 2);
  Alcotest.(check int) "bin 3" 1 (Histogram.bin_value h 3);
  Alcotest.(check int) "overflow" 2 (Histogram.bin_value h 4)

let test_histogram_cumulative () =
  let h = Histogram.create ~bin_width:10 ~max_value:100 in
  List.iter (Histogram.add h) [ 5; 15; 25; 35 ];
  check_float "half at 19" 0.5 (Histogram.cumulative_at h 19);
  check_float "all at 99" 1.0 (Histogram.cumulative_at h 99)

let test_histogram_percentile () =
  let h = Histogram.create ~bin_width:10 ~max_value:100 in
  for v = 0 to 99 do
    Histogram.add h v
  done;
  Alcotest.(check int) "p50" 50 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p100" 100 (Histogram.percentile h 100.0)

let test_histogram_mode () =
  let h = Histogram.create ~bin_width:10 ~max_value:100 in
  List.iter (Histogram.add h) [ 11; 12; 13; 55 ];
  Alcotest.(check int) "mode bin" 1 (Histogram.mode_bin h)

let test_histogram_rejects_negative () =
  let h = Histogram.create ~bin_width:10 ~max_value:100 in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add: negative sample")
    (fun () -> Histogram.add h (-1))

let test_histogram_render_smoke () =
  let h = Histogram.create ~bin_width:50 ~max_value:200 in
  List.iter (Histogram.add h) [ 10; 20; 60; 170 ];
  let buf = Buffer.create 64 in
  Histogram.render h (Format.formatter_of_buffer buf);
  Alcotest.(check bool) "mentions total" true
    (let s = Buffer.contents buf in
     String.length s > 0)

let test_histogram_fraction_below () =
  let h = Histogram.create ~bin_width:10 ~max_value:100 in
  List.iter (Histogram.add h) [ 5; 15; 25; 35 ];
  Alcotest.(check (float 1e-9)) "at boundary" 0.25 (Histogram.fraction_below h 10);
  Alcotest.(check (float 1e-9)) "interpolated" 0.375 (Histogram.fraction_below h 15);
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Histogram.fraction_below h 0);
  Alcotest.(check (float 1e-9)) "all" 1.0 (Histogram.fraction_below h 1000)

let test_histogram_iter_covers_all_bins () =
  let h = Histogram.create ~bin_width:25 ~max_value:100 in
  List.iter (Histogram.add h) [ 0; 30; 99; 500 ];
  let seen = ref 0 and counted = ref 0 and overflow = ref None in
  Histogram.iter h (fun ~lower:_ ~upper ~count ->
      incr seen;
      counted := !counted + count;
      if upper = None then overflow := Some count);
  Alcotest.(check int) "bins visited" (Histogram.bin_count h) !seen;
  Alcotest.(check int) "samples counted" 4 !counted;
  Alcotest.(check (option int)) "overflow bin" (Some 1) !overflow

let test_histogram_empty_percentile () =
  let h = Histogram.create ~bin_width:10 ~max_value:100 in
  Alcotest.(check int) "empty p99" 0 (Histogram.percentile h 99.0);
  Alcotest.(check (float 1e-9)) "empty cumulative" 0.0 (Histogram.cumulative_at h 50)

(* --- Stats ------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "n" 4 (Stats.n s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "min" 1.0 (Stats.min_value s);
  check_float "max" 4.0 (Stats.max_value s);
  check_float "total" 10.0 (Stats.total s);
  Alcotest.(check bool) "variance"
    true
    (Float.abs (Stats.variance s -. (5.0 /. 3.0)) < 1e-9)

let test_stats_pp_renders () =
  let s = Stats.create () in
  Alcotest.(check string) "empty" "(no samples)" (Format.asprintf "%a" Stats.pp s);
  Stats.add s 1.5;
  Stats.add s 2.5;
  let rendered = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "mentions mean" true
    (String.length rendered > 0 && String.sub rendered 0 4 = "2.00")

let test_stats_merge_with_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 5.0;
  let m1 = Stats.merge a b and m2 = Stats.merge b a in
  Alcotest.(check int) "n left" 1 (Stats.n m1);
  Alcotest.(check int) "n right" 1 (Stats.n m2);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean m2)

let test_stats_merge_equals_combined () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  let values = [ 1.5; 2.5; 10.0; -3.0; 7.25; 0.0 ] in
  List.iteri
    (fun i v ->
      Stats.add all v;
      Stats.add (if i mod 2 = 0 then a else b) v)
    values;
  let m = Stats.merge a b in
  check_float "mean" (Stats.mean all) (Stats.mean m);
  Alcotest.(check bool) "variance close" true
    (Float.abs (Stats.variance all -. Stats.variance m) < 1e-9);
  Alcotest.(check int) "n" (Stats.n all) (Stats.n m)

(* --- Table / Chart ----------------------------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("us", Table.Right) ] in
  Table.add_row t [ "Null"; "157" ];
  Table.add_row t [ "Add"; "164" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "has Null row" true (contains ~needle:"Null" s);
  Alcotest.(check bool) "has header" true (contains ~needle:"name" s)

let test_table_wrong_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_chart_render () =
  let c = Chart.create ~x_label:"processors" ~y_label:"calls/s" () in
  Chart.add_series c ~name:"LRPC" [ (1., 6300.); (4., 23000.) ];
  let s = Chart.to_string c in
  Alcotest.(check bool) "non-empty" true (String.length s > 100)

(* --- Property tests ---------------------------------------------------- *)

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram count equals samples added" ~count:200
    QCheck.(list (int_bound 5000))
    (fun samples ->
      let h = Histogram.create ~bin_width:100 ~max_value:2000 in
      List.iter (Histogram.add h) samples;
      Histogram.count h = List.length samples)

let prop_histogram_cumulative_monotone =
  QCheck.Test.make ~name:"histogram cumulative is monotone" ~count:100
    QCheck.(list_of_size (Gen.return 50) (int_bound 1000))
    (fun samples ->
      let h = Histogram.create ~bin_width:37 ~max_value:900 in
      List.iter (Histogram.add h) samples;
      let ok = ref true in
      let prev = ref 0.0 in
      for v = 0 to 1000 do
        let c = Histogram.cumulative_at h v in
        if c < !prev -. 1e-12 then ok := false;
        prev := c
      done;
      !ok)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"stats mean within min..max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun samples ->
      let s = Stats.create () in
      List.iter (Stats.add s) samples;
      Stats.mean s >= Stats.min_value s -. 1e-6
      && Stats.mean s <= Stats.max_value s +. 1e-6)

(* The production PRNG carries its state as 32-bit limbs in native ints
   (allocation-free hot path); this reference is the textbook Int64
   SplitMix64. The two must agree bit for bit on every seed, or every
   "deterministic given a seed" guarantee in the repo silently shifts. *)
let reference_splitmix64 state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  (state, Int64.logxor z (Int64.shift_right_logical z 31))

let prop_prng_matches_reference =
  QCheck.Test.make ~name:"prng bit-identical to Int64 SplitMix64" ~count:300
    QCheck.int64
    (fun seed ->
      let g = Prng.create ~seed in
      let state = ref seed in
      let ok = ref true in
      for _ = 1 to 64 do
        let state', expected = reference_splitmix64 !state in
        state := state';
        if Prng.next_int64 g <> expected then ok := false
      done;
      !ok)

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"prng int respects bound" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

(* --- Qsketch ------------------------------------------------------------ *)

let test_qsketch_empty () =
  let s = Qsketch.create () in
  Alcotest.(check int) "count" 0 (Qsketch.count s);
  Alcotest.(check int) "p50" 0 (Qsketch.p50 s);
  Alcotest.(check int) "p999" 0 (Qsketch.p999 s);
  check_float "mean" 0.0 (Qsketch.mean s)

let test_qsketch_small_values_exact () =
  (* Values below 2^sub_bits land in one-unit buckets: quantiles are
     exact order statistics there. *)
  let s = Qsketch.create () in
  List.iter (Qsketch.add s) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check int) "count" 8 (Qsketch.count s);
  Alcotest.(check int) "sum" 31 (Qsketch.sum s);
  Alcotest.(check int) "p50 = 4th smallest" 3 (Qsketch.quantile s 0.5);
  Alcotest.(check int) "max" 9 (Qsketch.quantile s 1.0)

let test_qsketch_rejects () =
  let s = Qsketch.create () in
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Qsketch.add: negative sample") (fun () ->
      Qsketch.add s (-1));
  let t = Qsketch.create ~sub_bits:6 () in
  (match Qsketch.merge s t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sub_bits mismatch must not merge");
  match Qsketch.create ~sub_bits:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sub_bits 0 must be rejected"

let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

let qsketch_samples =
  (* Mix magnitudes so both the exact region and several power-of-two
     ranges are exercised. *)
  QCheck.(
    list_of_size
      Gen.(int_range 1 300)
      (Gen.oneof
         [ Gen.int_bound 30; Gen.int_bound 5_000; Gen.int_bound 10_000_000 ]
       |> make))

let prop_qsketch_quantile_bound =
  QCheck.Test.make ~count:200
    ~name:"qsketch quantile within relative-error bound of exact" qsketch_samples
    (fun samples ->
      let s = Qsketch.create () in
      List.iter (Qsketch.add s) samples;
      let sorted = Array.of_list (List.sort compare samples) in
      let err = Qsketch.relative_error s in
      List.for_all
        (fun q ->
          let exact = exact_quantile sorted q in
          let approx = Qsketch.quantile s q in
          approx >= exact
          && float_of_int approx
             <= (float_of_int exact *. (1.0 +. err)) +. 1.0)
        [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let prop_qsketch_merge_is_concat =
  QCheck.Test.make ~count:200
    ~name:"qsketch merge(a,b) == sketch(a @ b) at every quantile"
    QCheck.(pair qsketch_samples qsketch_samples)
    (fun (xs, ys) ->
      let sa = Qsketch.create () and sb = Qsketch.create () in
      List.iter (Qsketch.add sa) xs;
      List.iter (Qsketch.add sb) ys;
      let merged = Qsketch.merge sa sb in
      let concat = Qsketch.create () in
      List.iter (Qsketch.add concat) (xs @ ys);
      let ok = ref (Qsketch.count merged = Qsketch.count concat) in
      ok := !ok && Qsketch.sum merged = Qsketch.sum concat;
      for i = 0 to 100 do
        let q = float_of_int i /. 100.0 in
        if Qsketch.quantile merged q <> Qsketch.quantile concat q then
          ok := false
      done;
      !ok)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_histogram_total;
        prop_histogram_cumulative_monotone;
        prop_stats_mean_bounded;
        prop_prng_matches_reference;
        prop_prng_int_in_range;
        prop_qsketch_quantile_bound;
        prop_qsketch_merge_is_concat;
      ]
  in
  Alcotest.run "lrpc_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bernoulli mean" `Quick test_prng_bernoulli_mean;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
          Alcotest.test_case "choose weights" `Quick test_prng_choose_weights;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "cumulative" `Quick test_histogram_cumulative;
          Alcotest.test_case "percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "mode" `Quick test_histogram_mode;
          Alcotest.test_case "rejects negative" `Quick test_histogram_rejects_negative;
          Alcotest.test_case "render" `Quick test_histogram_render_smoke;
          Alcotest.test_case "fraction below" `Quick test_histogram_fraction_below;
          Alcotest.test_case "iter" `Quick test_histogram_iter_covers_all_bins;
          Alcotest.test_case "empty percentile" `Quick test_histogram_empty_percentile;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "pp" `Quick test_stats_pp_renders;
          Alcotest.test_case "merge empty" `Quick test_stats_merge_with_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge_equals_combined;
        ] );
      ( "table+chart",
        [
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table arity" `Quick test_table_wrong_arity;
          Alcotest.test_case "chart render" `Quick test_chart_render;
        ] );
      ( "qsketch",
        [
          Alcotest.test_case "empty" `Quick test_qsketch_empty;
          Alcotest.test_case "small values exact" `Quick
            test_qsketch_small_values_exact;
          Alcotest.test_case "rejects" `Quick test_qsketch_rejects;
        ] );
      ("properties", qsuite);
    ]
