module Prng = Lrpc_util.Prng
module Histogram = Lrpc_util.Histogram
module Os = Lrpc_workload.Os_profiles
module Sizes = Lrpc_workload.Sizes
module Driver = Lrpc_workload.Driver
module Time = Lrpc_sim.Time
module V = Lrpc_idl.Value

(* --- Table 1 models --------------------------------------------------------- *)

let test_expected_percents_match_paper () =
  List.iter
    (fun m ->
      let expected = Os.expected_percent m in
      Alcotest.(check bool)
        (Printf.sprintf "%s analytic %.2f near paper %.1f" m.Os.os_name expected
           m.Os.paper_percent)
        true
        (Float.abs (expected -. m.Os.paper_percent) < 0.3))
    Os.all

let test_sampling_converges () =
  let rng = Prng.create ~seed:11L in
  List.iter
    (fun m ->
      let r = Os.run (Prng.split rng) m ~operations:400_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s sampled %.2f" m.Os.os_name r.Os.percent_cross_machine)
        true
        (Float.abs (r.Os.percent_cross_machine -. Os.expected_percent m) < 0.25);
      Alcotest.(check int) "counts partition" r.Os.operations
        (r.Os.cross_domain + r.Os.cross_machine))
    Os.all

let test_cross_domain_dominates_everywhere () =
  let rng = Prng.create ~seed:5L in
  List.iter
    (fun m ->
      let r = Os.run (Prng.split rng) m ~operations:50_000 in
      Alcotest.(check bool) "cross-domain dominates" true
        (r.Os.cross_domain > 9 * r.Os.cross_machine))
    Os.all

let test_run_deterministic () =
  let run () = Os.run (Prng.create ~seed:3L) Os.taos ~operations:10_000 in
  Alcotest.(check int) "same counts" (run ()).Os.cross_machine
    (run ()).Os.cross_machine

(* --- Figure 1 population ------------------------------------------------------ *)

let pop = Sizes.generate_population (Prng.create ~seed:42L)

let test_population_shape () =
  Alcotest.(check int) "services" 28 pop.Sizes.services;
  Alcotest.(check int) "procedures" 366 (Array.length pop.Sizes.procs);
  Alcotest.(check bool) "over 1000 parameters" true (Sizes.param_count pop > 1000)

let near name target tolerance value =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.3f within %.3f of %.3f" name value tolerance target)
    true
    (Float.abs (value -. target) <= tolerance)

let test_population_statics () =
  near "fixed params (4 of 5)" 0.80 0.05 (Sizes.static_fixed_param_fraction pop);
  near "small params (65%)" 0.65 0.05 (Sizes.static_small_param_fraction pop);
  near "all-fixed procs (2/3)" 0.67 0.07 (Sizes.static_all_fixed_proc_fraction pop);
  near "small procs (60%)" 0.60 0.10 (Sizes.static_small_proc_fraction pop)

let test_traffic_landmarks () =
  let rng = Prng.create ~seed:42L in
  let stats = Sizes.synthesize_traffic rng pop ~calls:300_000 in
  Alcotest.(check int) "112 distinct procs" 112 stats.Sizes.distinct_procs;
  near "top-3 share" 0.75 0.02 stats.Sizes.top3_share;
  near "top-10 share" 0.95 0.02 stats.Sizes.top10_share;
  let h = stats.Sizes.histogram in
  Alcotest.(check int) "mode under 50 bytes" 0 (Histogram.mode_bin h);
  Alcotest.(check bool) "majority under 200" true
    (Histogram.cumulative_at h 199 > 0.5);
  Alcotest.(check bool) "visible tail beyond 200" true
    (Histogram.cumulative_at h 199 < 0.99)

let test_traffic_deterministic () =
  let stats seed =
    let rng = Prng.create ~seed in
    let p = Sizes.generate_population rng in
    Sizes.synthesize_traffic rng p ~calls:20_000
  in
  let a = stats 9L and b = stats 9L in
  Alcotest.(check int) "same max" a.Sizes.max_single b.Sizes.max_single;
  Alcotest.(check (float 1e-12)) "same share" a.Sizes.top3_share b.Sizes.top3_share

(* --- Session: a real simulated workstation ------------------------------------ *)

module Session = Lrpc_workload.Session

let test_session_counts_partition () =
  let r = Session.run ~operations:3_000 Os.taos in
  Alcotest.(check int) "all operations performed" r.Session.operations
    (r.Session.local_calls + r.Session.remote_calls);
  Alcotest.(check int) "3000 total" 3_000 r.Session.operations

let test_session_percent_near_model () =
  let r = Session.run ~operations:20_000 Os.taos in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f%% near 5.3%%" r.Session.percent_remote_calls)
    true
    (Float.abs (r.Session.percent_remote_calls -. 5.25) < 1.0)

let test_session_time_amplification () =
  (* the paper's motivation: a cross-machine RPC is slower than even a
     slow cross-domain RPC, so a sliver of remote calls dominates time *)
  let r = Session.run ~operations:10_000 Os.taos in
  Alcotest.(check bool) "time share >> call share" true
    (r.Session.percent_time_remote > 4.0 *. r.Session.percent_remote_calls);
  Alcotest.(check bool) "network time below elapsed" true
    (Lrpc_sim.Time.compare r.Session.network_time r.Session.elapsed < 0)

let test_session_no_remote_for_pure_local_model () =
  let local_only =
    {
      Os.os_name = "local-only";
      classes = [ { Os.class_name = "ipc"; weight = 1.0; remote_probability = 0.0 } ];
      paper_percent = 0.0;
    }
  in
  let r = Session.run ~operations:500 local_only in
  Alcotest.(check int) "no remote calls" 0 r.Session.remote_calls;
  Alcotest.(check int) "no network time" 0 r.Session.network_time

let test_session_deterministic () =
  let a = Session.run ~seed:7L ~operations:2_000 Os.v_system in
  let b = Session.run ~seed:7L ~operations:2_000 Os.v_system in
  Alcotest.(check int) "same remote count" a.Session.remote_calls
    b.Session.remote_calls;
  Alcotest.(check int) "same elapsed" a.Session.elapsed b.Session.elapsed

(* --- Driver ----------------------------------------------------------------- *)

let test_driver_four_tests_shapes () =
  let tests = Driver.four_tests () in
  Alcotest.(check (list string))
    "names"
    [ "Null"; "Add"; "BigIn"; "BigInOut" ]
    (List.map (fun t -> t.Driver.test_name) tests);
  let bigin = List.nth tests 2 in
  match bigin.Driver.args with
  | [ V.Bytes b ] -> Alcotest.(check int) "200 bytes" 200 (Bytes.length b)
  | _ -> Alcotest.fail "BigIn args"

let test_driver_lrpc_latency_sane () =
  let w = Driver.make_lrpc () in
  let null = Driver.lrpc_latency ~calls:50 w ~proc:"null" ~args:[] in
  Alcotest.(check (float 0.01)) "157" 157.0 null

let test_driver_throughput_matches_latency () =
  let tput =
    Driver.lrpc_throughput ~clients:1 ~horizon:(Time.ms 100) ()
  in
  (* 1e6/157 = 6369 *)
  Alcotest.(check bool)
    (Printf.sprintf "%.0f in 6300..6400" tput)
    true
    (tput > 6_300. && tput < 6_400.)

let test_driver_failure_propagates () =
  (* A driver world with a broken impl must raise, not hang or succeed. *)
  let w = Driver.make_lrpc () in
  match
    Driver.lrpc_latency ~calls:1 w ~proc:"add" ~args:[ V.bool true; V.int 2 ]
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "type error should surface"

(* --- Open-loop arrival streams ------------------------------------------- *)

module Ol = Lrpc_workload.Openloop
module Kernel = Lrpc_kernel.Kernel
module Api = Lrpc_core.Api
module Engine = Lrpc_sim.Engine

let gaps cfg ~per_stream =
  let ss = Ol.streams cfg in
  Array.to_list ss
  |> List.concat_map (fun s -> List.init per_stream (fun _ -> Ol.next_gap s))

let poisson_cfg =
  {
    Ol.ol_seed = 7L;
    ol_sessions = 16;
    ol_offered_cps = 8_000.0;
    ol_process = Ol.Poisson;
    ol_horizon = Time.ms 100;
    ol_warmup = Time.ms 10;
  }

let bursty_cfg =
  {
    poisson_cfg with
    Ol.ol_process =
      Ol.Bursty
        { burst_mult = 4.0; mean_burst = Time.ms 5; mean_idle = Time.ms 15 };
  }

let test_openloop_streams_deterministic () =
  List.iter
    (fun cfg ->
      let a = gaps cfg ~per_stream:200 and b = gaps cfg ~per_stream:200 in
      Alcotest.(check (list (float 0.0))) "same gap sequence" a b)
    [ poisson_cfg; bursty_cfg ];
  let a = gaps poisson_cfg ~per_stream:10 in
  let b = gaps { poisson_cfg with Ol.ol_seed = 8L } ~per_stream:10 in
  Alcotest.(check bool) "seed changes the stream" false (a = b)

let test_openloop_mean_rate () =
  (* 16 sessions at 8000 cps total: 500/s each, mean gap 2000 us.
     Holds for the MMPP too — its idle/burst rates are balanced to
     preserve the session mean. *)
  List.iter
    (fun cfg ->
      let g = gaps cfg ~per_stream:3000 in
      let mean = List.fold_left ( +. ) 0.0 g /. float_of_int (List.length g) in
      Alcotest.(check bool)
        (Printf.sprintf "mean gap %.0f near 2000" mean)
        true
        (Float.abs (mean -. 2000.0) < 150.0))
    [ poisson_cfg; bursty_cfg ]

let test_openloop_run_tracks_offered () =
  (* A real LRPC world at ~29% of its single-CPU capacity: achieved
     throughput tracks offered, and latency stays near the closed-loop
     157 us null time. *)
  let w = Driver.make_lrpc () in
  let binding =
    Api.import w.Driver.lw_rt ~domain:w.Driver.lw_client ~interface:"Bench"
  in
  let cfg =
    {
      Ol.ol_seed = 11L;
      ol_sessions = 8;
      ol_offered_cps = 1_800.0;
      ol_process = Ol.Poisson;
      ol_horizon = Time.ms 200;
      ol_warmup = Time.ms 40;
    }
  in
  let r =
    Ol.run cfg ~engine:w.Driver.lw_engine
      ~spawn:(fun ~session body ->
        ignore
          (Kernel.spawn w.Driver.lw_kernel w.Driver.lw_client
             ~name:(Printf.sprintf "ol%d" session) body))
      ~call:(fun ~session:_ ~lateness_us:_ ->
        ignore (Api.call w.Driver.lw_rt binding ~proc:"null" []);
        `Ok)
  in
  Alcotest.(check bool) "issued some calls" true (r.Ol.ol_issued > 200);
  Alcotest.(check bool) "completed <= issued" true
    (r.Ol.ol_completed <= r.Ol.ol_issued);
  Alcotest.(check int) "sketch holds the measured calls" r.Ol.ol_measured
    (Lrpc_util.Qsketch.count r.Ol.ol_sketch);
  Alcotest.(check bool)
    (Printf.sprintf "achieved %.0f tracks offered" r.Ol.ol_achieved_cps)
    true
    (Float.abs (r.Ol.ol_achieved_cps -. 1_800.0) < 300.0);
  Alcotest.(check bool)
    (Printf.sprintf "mean %.0f us near unloaded null" r.Ol.ol_mean_us)
    true
    (r.Ol.ol_mean_us > 100.0 && r.Ol.ol_mean_us < 500.0)

let test_openloop_shed_accounting () =
  (* Shed plumbing: refused arrivals are tallied, never measured, and
     every call sees a non-negative lateness (run-queue wait plus the
     session's backlog past its scheduled arrival). An overloaded-style
     client that sheds every other arrival must end with
     issued = completed + shed and a sketch holding only the
     completions. *)
  let w = Driver.make_lrpc () in
  let binding =
    Api.import w.Driver.lw_rt ~domain:w.Driver.lw_client ~interface:"Bench"
  in
  let cfg =
    {
      Ol.ol_seed = 23L;
      ol_sessions = 4;
      ol_offered_cps = 1_000.0;
      ol_process = Ol.Poisson;
      ol_horizon = Time.ms 100;
      ol_warmup = Time.ms 20;
    }
  in
  let parity = ref 0 in
  let min_lateness = ref infinity in
  let r =
    Ol.run cfg ~engine:w.Driver.lw_engine
      ~spawn:(fun ~session body ->
        ignore
          (Kernel.spawn w.Driver.lw_kernel w.Driver.lw_client
             ~name:(Printf.sprintf "ol%d" session) body))
      ~call:(fun ~session:_ ~lateness_us ->
        if lateness_us < !min_lateness then min_lateness := lateness_us;
        incr parity;
        if !parity mod 2 = 0 then `Shed
        else begin
          ignore (Api.call w.Driver.lw_rt binding ~proc:"null" []);
          `Ok
        end)
  in
  Alcotest.(check bool) "issued some calls" true (r.Ol.ol_issued > 20);
  Alcotest.(check int) "every arrival tallied exactly once" r.Ol.ol_issued
    (r.Ol.ol_completed + r.Ol.ol_shed);
  Alcotest.(check bool) "about half shed" true
    (abs ((2 * r.Ol.ol_shed) - r.Ol.ol_issued) <= 1);
  Alcotest.(check bool) "shed calls are not measured" true
    (r.Ol.ol_measured <= r.Ol.ol_completed);
  Alcotest.(check int) "sketch holds only completions" r.Ol.ol_measured
    (Lrpc_util.Qsketch.count r.Ol.ol_sketch);
  Alcotest.(check bool) "lateness is never negative" true
    (!min_lateness >= 0.0)

let test_openloop_rejects () =
  (match Ol.streams { poisson_cfg with Ol.ol_sessions = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no sessions");
  match Ol.streams { poisson_cfg with Ol.ol_offered_cps = 0.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero load"

(* --- Counter hygiene across worlds ----------------------------------------- *)

(* A scale run on a clustered topology steals plenty; a world booted
   right after it starts from zero on every engine counter — Driver.boot
   builds a fresh engine, nothing leaks through globals. *)
let test_counters_fresh_across_boots () =
  let module Engine = Lrpc_sim.Engine in
  let module Cost_model = Lrpc_sim.Cost_model in
  let clu =
    Cost_model.clustered ~cluster_size:4 ~name:"clu4" Cost_model.cvax_firefly
  in
  let config =
    { Driver.Config.default with Driver.Config.processors = 8; cost_model = clu }
  in
  let stats =
    Driver.lrpc_scale ~yield_between:true
      ~home:(fun i -> i mod 2 * 4)
      ~config ~clients:12 ~horizon:(Time.ms 20) ()
  in
  let stolen =
    Array.fold_left ( + ) 0 stats.Driver.ss_steals
    + Array.fold_left ( + ) 0 stats.Driver.ss_steals_tagged
  in
  Alcotest.(check bool) "first world stole" true (stolen > 0);
  let b = Driver.boot config in
  Alcotest.(check int) "fresh steals" 0 (Engine.total_steals b.Driver.bt_engine);
  Alcotest.(check int) "fresh near" 0
    (Engine.total_steals_near b.Driver.bt_engine);
  Alcotest.(check int) "fresh far" 0
    (Engine.total_steals_far b.Driver.bt_engine);
  Alcotest.(check int) "fresh tlb" 0
    (Engine.total_tlb_misses b.Driver.bt_engine)

(* --- Legacy constructors forward to the Config path ----------------------- *)

let test_legacy_wrappers_equivalent () =
  let modern =
    let w =
      Driver.make_lrpc
        ~config:{ Driver.Config.default with Driver.Config.processors = 2 }
        ()
    in
    Driver.lrpc_latency ~calls:50 w ~proc:"null" ~args:[]
  in
  let legacy =
    let w = Driver.Legacy.make_lrpc ~processors:2 () in
    Driver.lrpc_latency ~calls:50 w ~proc:"null" ~args:[]
  in
  Alcotest.(check (float 1e-9)) "same latency" modern legacy

let () =
  Alcotest.run "lrpc_workload"
    [
      ( "table1 models",
        [
          Alcotest.test_case "analytic percents" `Quick test_expected_percents_match_paper;
          Alcotest.test_case "sampling converges" `Quick test_sampling_converges;
          Alcotest.test_case "cross-domain dominates" `Quick test_cross_domain_dominates_everywhere;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
        ] );
      ( "figure1 model",
        [
          Alcotest.test_case "population shape" `Quick test_population_shape;
          Alcotest.test_case "population statics" `Quick test_population_statics;
          Alcotest.test_case "traffic landmarks" `Quick test_traffic_landmarks;
          Alcotest.test_case "deterministic" `Quick test_traffic_deterministic;
        ] );
      ( "session",
        [
          Alcotest.test_case "counts partition" `Quick test_session_counts_partition;
          Alcotest.test_case "percent near model" `Quick test_session_percent_near_model;
          Alcotest.test_case "time amplification" `Quick test_session_time_amplification;
          Alcotest.test_case "pure local" `Quick test_session_no_remote_for_pure_local_model;
          Alcotest.test_case "deterministic" `Quick test_session_deterministic;
        ] );
      ( "driver",
        [
          Alcotest.test_case "four tests" `Quick test_driver_four_tests_shapes;
          Alcotest.test_case "latency sane" `Quick test_driver_lrpc_latency_sane;
          Alcotest.test_case "throughput" `Quick test_driver_throughput_matches_latency;
          Alcotest.test_case "failures surface" `Quick test_driver_failure_propagates;
          Alcotest.test_case "counters fresh across boots" `Quick
            test_counters_fresh_across_boots;
          Alcotest.test_case "legacy wrappers" `Quick test_legacy_wrappers_equivalent;
        ] );
      ( "openloop",
        [
          Alcotest.test_case "streams deterministic" `Quick
            test_openloop_streams_deterministic;
          Alcotest.test_case "mean rate preserved" `Quick test_openloop_mean_rate;
          Alcotest.test_case "run tracks offered" `Quick
            test_openloop_run_tracks_offered;
          Alcotest.test_case "shed accounting" `Quick
            test_openloop_shed_accounting;
          Alcotest.test_case "rejects" `Quick test_openloop_rejects;
        ] );
    ]
